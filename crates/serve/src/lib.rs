//! # edm-serve
//!
//! A concurrent serving tier over [`edm_core::EdmStream`] — the paper's
//! real-time story (§6.3.1 reports ~7 ms response against a continuously
//! updating clustering) made operational: ingest keeps running on a
//! dedicated writer thread while unbounded concurrent readers answer
//! `cluster_of` / `n_clusters` / `decision_graph` from the latest
//! *published* snapshot, never blocking the writer and never taking a
//! lock on the read path.
//!
//! The engine's query layer is strictly `&self` and its snapshots are
//! owned + `Send`/`Sync`, so serving reduces to one mechanism:
//! **generation-stamped snapshot publication** through a hand-rolled
//! double-buffered [`swap::SwapCell`] (the vendor tree is offline, so the
//! usual `arc-swap` crate is reimplemented in ~60 lines of audited
//! `unsafe` — see `swap.rs` for the full protocol and safety argument;
//! this is the only `unsafe` module in the workspace's first-party
//! crates).
//!
//! ```
//! use std::num::{NonZeroU64, NonZeroUsize};
//! use edm_core::{EdmConfig, EdmStream};
//! use edm_common::metric::Euclidean;
//! use edm_common::point::DenseVector;
//! use edm_serve::{EdmServer, ServeConfig};
//!
//! let cfg = EdmConfig::builder(0.5).rate(100.0).beta(6e-5).init_points(16).build()?;
//! let server = EdmServer::spawn(EdmStream::new(cfg, Euclidean), ServeConfig::default());
//! let handle = server.handle(); // clone freely across reader threads
//!
//! let batch: Vec<(DenseVector, f64)> = (0..64)
//!     .map(|i| {
//!         let x = if i % 2 == 0 { 0.0 } else { 8.0 };
//!         (DenseVector::from([x, 0.1 * (i % 4) as f64]), i as f64 / 100.0)
//!     })
//!     .collect();
//! server.ingest(batch)?;
//!
//! let engine = server.shutdown()?; // drain + final publish + engine back
//! assert_eq!(handle.n_clusters(), 2);
//! assert!(handle.cluster_of(&DenseVector::from([0.1, 0.1])).is_some());
//! assert!(handle.generation() >= 2); // spawn + final publish at least
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # Paper map
//!
//! | Piece | Paper anchor | Serves |
//! |---|---|---|
//! | [`SnapshotPublisher`] / [`swap::SwapCell`] | §6.3.1 real-time response | queries answered from maintained state at memory-read cost, independent of ingest |
//! | [`Published::cluster_of`] | §3.1 / Def. 4 | point→cluster via nearest cell seed within `r`, on the frozen view |
//! | [`ServeConfig::publish_every_batches`] | §4 "cluster evolves as points arrive" | staleness/throughput knob: how much evolution accumulates between published views |
//! | [`ServeStats`] | §6.3 experiments | the observability the paper's latency/throughput tables need |
//! | [`ServeHandle::execute`] / [`Query`] | §6.3.1 query kinds | one typed evaluation path shared by in-process readers and remote clients |
//! | [`net::NetServer`] | §6.3.1 "monitoring applications" | the paper's remote dashboards: the same queries over TCP, answers identical by construction |

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod config;
mod error;
pub mod net;
mod publish;
mod query;
mod queue;
mod server;
mod stats;
pub mod swap;

pub use config::{BackpressurePolicy, ServeConfig, ServeConfigBuilder, ServeConfigError};
pub use error::ServeError;
pub use publish::{Published, SnapshotPublisher, SnapshotSource};
pub use query::{Assignment, ClusterMiss, HealthStatus, Query, QueryError, QueryResponse};
pub use server::{EdmServer, ServeHandle};
pub use stats::ServeStats;
