//! # edm-baselines
//!
//! The four density-based stream clustering competitors of the paper's
//! evaluation (§6), all implementing
//! [`edm_data::clusterer::StreamClusterer`]:
//!
//! * [`dstream`] — **D-Stream** (Chen & Tu, KDD'07): fixed grid with decayed
//!   grid densities, sporadic-grid removal, and periodic offline clustering
//!   by dense-grid connectivity.
//! * [`denstream`] — **DenStream** (Cao et al., SDM'06): potential/outlier
//!   micro-clusters with decayed CF triples and an offline weighted-DBSCAN
//!   step over micro-cluster centers.
//! * [`dbstream`] — **DBSTREAM** (Hahsler & Bolaños, TKDE'16): leader-based
//!   micro-clusters with a *shared density* graph connecting overlapping
//!   neighborhoods.
//! * [`mrstream`] — **MR-Stream** (Wan et al., TKDD'09): a multi-resolution
//!   grid hierarchy updated along a root-to-leaf path per point.
//!
//! All four follow the two-phase design the paper contrasts EDMStream
//! against: a cheap online summarization plus a periodic offline
//! re-clustering executed inside `insert` every `offline_every` points —
//! that periodic step is exactly what makes their response time spike
//! (paper §6.3.1) and their throughput collapse on wide streams.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dbstream;
pub mod denstream;
pub mod dstream;
pub mod mrstream;

pub use dbstream::{DbStream, DbStreamConfig};
pub use denstream::{DenStream, DenStreamConfig};
pub use dstream::{DStream, DStreamConfig};
pub use mrstream::{MrStream, MrStreamConfig};
