//! Fig 9 (response time) and Fig 10 (throughput).
//!
//! Drives every algorithm through KDDCUP99 / CoverType / PAMAP2 and
//! reports per-point processing latency in µs over stream-length buckets
//! (Fig 9, without MR-Stream, which the paper says cannot sustain
//! 1k pt/s) and sustained throughput in points/sec (Fig 10, all five).
//! The shape to reproduce: EDMStream runs in single-digit-to-tens of µs
//! and leads by a wide margin; the two-phase baselines pay for their
//! periodic offline re-clustering.

use edm_common::point::DenseVector;
use edm_common::time::Stopwatch;
use edm_data::clusterer::StreamClusterer;

use super::Ctx;
use crate::catalog::{self, DatasetId};
use crate::report::{f, Report};

/// Latency series for one algorithm: (points_processed, avg_us) buckets.
pub fn latency_series(
    algo: &mut dyn StreamClusterer<DenseVector>,
    stream: &edm_data::stream::LabeledStream<DenseVector>,
    buckets: usize,
) -> Vec<(usize, f64)> {
    let n = stream.len();
    let bucket = (n / buckets).max(1);
    let mut series = Vec::with_capacity(buckets);
    let mut w = Stopwatch::start();
    let mut processed = 0usize;
    for p in stream.iter() {
        algo.insert(&p.payload, p.ts);
        processed += 1;
        if processed.is_multiple_of(bucket) {
            let us = w.lap_secs() * 1e6 / bucket as f64;
            series.push((processed, us));
        }
    }
    series
}

const PERF_DATASETS: [DatasetId; 3] = [DatasetId::Kdd, DatasetId::CoverType, DatasetId::Pamap2];

/// Regenerates Fig 9 (response time; EDMStream vs D-Stream, DenStream,
/// DBSTREAM).
pub fn run_fig9(ctx: &Ctx) -> std::io::Result<()> {
    let mut rep = Report::new(
        "fig9_response_time",
        &["dataset", "algorithm", "len_k", "avg_us", "sustains_1k_per_s"],
        ctx.out_dir(),
    );
    for id in PERF_DATASETS {
        let ds = catalog::load(id, ctx.scale, 1_000.0);
        for mut algo in catalog::fig9_algorithms(&ds, 1_000) {
            let series = latency_series(algo.as_mut(), &ds.stream, 8);
            for (len, us) in &series {
                rep.row(vec![
                    ds.id.name(),
                    algo.name().into(),
                    format!("{}", len / 1_000),
                    f(*us, 2),
                    (if *us < 1_000.0 { "yes" } else { "NO" }).into(),
                ]);
            }
        }
    }
    rep.finish()
}

/// Regenerates Fig 10 (throughput stress test; all five algorithms).
pub fn run_fig10(ctx: &Ctx) -> std::io::Result<()> {
    let mut rep = Report::new(
        "fig10_throughput",
        &["dataset", "algorithm", "points", "total_s", "pts_per_s"],
        ctx.out_dir(),
    );
    for id in PERF_DATASETS {
        let ds = catalog::load(id, ctx.scale, 1_000.0);
        for mut algo in catalog::all_algorithms(&ds, 1_000) {
            let w = Stopwatch::start();
            for p in ds.stream.iter() {
                algo.insert(&p.payload, p.ts);
            }
            let secs = w.elapsed_secs();
            rep.row(vec![
                ds.id.name(),
                algo.name().into(),
                ds.stream.len().to_string(),
                f(secs, 3),
                f(ds.stream.len() as f64 / secs, 0),
            ]);
        }
    }
    rep.finish()
}
