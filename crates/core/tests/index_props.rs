//! Property tests for the neighbor-index subsystem.
//!
//! Two contracts guard the sub-linear indexes (plain grid, sharded grid,
//! and cover tree):
//!
//! 1. **Observational equivalence** — an engine backed by a grid index
//!    must produce *identical* clustering output to one backed by the
//!    brute-force linear scan on the same stream: same cells, same
//!    dependency tree, same τ, same cluster partition, same evolution
//!    events, same `cluster_of` answers. This holds for every shard
//!    count — sharding is an access path, never a policy.
//! 2. **Coherence** — across arbitrary interleavings of inserts, cell
//!    births, activations, demotions, and reservoir recycling (driven by
//!    the idle-ordered queue), the index must mirror the live slab
//!    exactly (no stale entry survives a recycled cell, no live cell
//!    goes missing), and the idle queue must keep every reservoir cell
//!    recyclable (checked inside `check_invariants`).

use std::num::NonZeroUsize;

use edm_common::metric::Euclidean;
use edm_common::point::DenseVector;
use edm_core::index::NeighborIndexKind;
use edm_core::{EdmConfig, EdmStream, Event};
use proptest::prelude::*;

fn engine_with_shards(kind: NeighborIndexKind, shards: usize) -> EdmStream<DenseVector, Euclidean> {
    let cfg = EdmConfig::builder(0.8)
        .rate(100.0)
        .beta_for_threshold(3.0)
        .init_points(25)
        .tau_every(16)
        .maintenance_every(8)
        .neighbor_index(kind)
        .shards(NonZeroUsize::new(shards).expect("shard counts in tests are nonzero"))
        .build()
        .expect("valid test configuration");
    EdmStream::new(cfg, Euclidean)
}

fn engine_with(kind: NeighborIndexKind) -> EdmStream<DenseVector, Euclidean> {
    engine_with_shards(kind, 1)
}

/// Full observable state: per-cell tree data, cluster partition, τ, events.
type Observed = (Vec<(u32, Option<u32>, f64, bool)>, Vec<Vec<u32>>, f64, Vec<Event>);

fn observe(engine: &mut EdmStream<DenseVector, Euclidean>, t: f64) -> Observed {
    let mut cells: Vec<(u32, Option<u32>, f64, bool)> =
        engine.slab().iter().map(|(id, c)| (id.0, c.dep.map(|d| d.0), c.delta, c.active)).collect();
    cells.sort_by_key(|c| c.0);
    let snap = engine.snapshot(t);
    let clusters: Vec<Vec<u32>> =
        snap.clusters().iter().map(|c| c.cells.iter().map(|id| id.0).collect()).collect();
    (cells, clusters, snap.tau(), engine.take_events())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The grid path is observationally equivalent to the linear scan on
    /// random streams — the tentpole's exactness claim.
    #[test]
    fn grid_and_linear_scan_produce_identical_clustering(
        points in prop::collection::vec(((-5.0f64..15.0), (-3.0f64..3.0)), 60..300),
    ) {
        let mut linear = engine_with(NeighborIndexKind::LinearScan);
        let mut grid = engine_with(NeighborIndexKind::Grid { side: None });
        for (i, &(x, y)) in points.iter().enumerate() {
            let t = i as f64 / 100.0;
            let p = DenseVector::from([x, y]);
            linear.insert(&p, t);
            grid.insert(&p, t);
        }
        let t = points.len() as f64 / 100.0;
        linear.force_init();
        grid.force_init();
        prop_assert_eq!(observe(&mut linear, t), observe(&mut grid, t));
        // Point-membership queries agree on a probe lattice too.
        for gx in -2..8 {
            for gy in -2..2 {
                let probe = DenseVector::from([gx as f64 * 2.0, gy as f64 * 2.0]);
                prop_assert_eq!(linear.cluster_of(&probe, t), grid.cluster_of(&probe, t));
            }
        }
        // And the grid did not silently fall back to scanning everything:
        // identical output must have cost fewer distance computations
        // (the streams always spread cells across many buckets).
        prop_assert!(
            grid.stats().index_pruned > 0,
            "grid pruned nothing over {} cells",
            grid.n_cells()
        );
        prop_assert!(grid.stats().index_probed < linear.stats().index_probed);
    }

    /// A non-default bucket side (coarser and finer than r) is still exact.
    #[test]
    fn custom_grid_sides_stay_exact(
        points in prop::collection::vec(((-4.0f64..10.0), (-2.0f64..2.0)), 60..200),
        side in 0.3f64..2.5,
    ) {
        let mut linear = engine_with(NeighborIndexKind::LinearScan);
        let mut grid = engine_with(NeighborIndexKind::Grid { side: Some(side) });
        for (i, &(x, y)) in points.iter().enumerate() {
            let t = i as f64 / 100.0;
            let p = DenseVector::from([x, y]);
            linear.insert(&p, t);
            grid.insert(&p, t);
        }
        let t = points.len() as f64 / 100.0;
        linear.force_init();
        grid.force_init();
        prop_assert_eq!(observe(&mut linear, t), observe(&mut grid, t));
    }

    /// Insert order + reservoir recycling never leave a stale entry in the
    /// index: its contents equal the live slab seeds after arbitrary
    /// interleavings of dense traffic, far-flung outliers, and time jumps
    /// large enough to trigger ΔT_del recycling — driven by the idle
    /// queue, whose reservoir coverage `check_invariants` verifies at
    /// every step.
    #[test]
    fn index_mirrors_slab_across_recycling_interleavings(
        ops in prop::collection::vec(
            ((-20.0f64..20.0), (-20.0f64..20.0), any::<bool>()),
            40..200,
        ),
    ) {
        let cfg = EdmConfig::builder(0.8)
            .rate(100.0)
            .beta_for_threshold(3.0)
            .init_points(10)
            .tau_every(16)
            .maintenance_every(4)
            .recycle_horizon(5.0)
            .build()
            .expect("valid test configuration");
        let mut e = EdmStream::new(cfg, Euclidean);
        let mut t = 0.0;
        for (i, &(x, y, jump)) in ops.iter().enumerate() {
            // Jumps outrun the 5 s recycling horizon; dense points keep a
            // few cells alive so recycling interleaves with fresh births.
            t += if jump { 7.0 } else { 0.01 };
            e.insert(&DenseVector::from([x, y]), t);
            prop_assert!(e.check_index().is_ok(), "index diverged: {:?}", e.check_index());
            // Tree + active-registry + idle-queue invariants, on a
            // cadence (pricier).
            if i % 7 == 0 && e.is_initialized() {
                prop_assert!(e.check_invariants(t).is_ok(), "{:?}", e.check_invariants(t));
            }
        }
        e.force_init();
        prop_assert!(e.check_index().is_ok());
        prop_assert!(e.check_invariants(t).is_ok());
        // The horizon jumps must actually have exercised recycling for
        // this property to mean anything.
        if ops.iter().filter(|(_, _, j)| *j).count() >= 5 {
            prop_assert!(e.stats().recycled > 0, "recycling never fired");
        }
    }

    /// The sharded grid is observationally equivalent to the linear scan
    /// for every tested shard count — including S = 1 (the plain grid
    /// identity) and a prime count that cannot align with any lattice
    /// structure in the stream.
    #[test]
    fn sharded_grid_matches_linear_scan_for_all_shard_counts(
        points in prop::collection::vec(((-5.0f64..15.0), (-3.0f64..3.0)), 60..220),
        shard_ix in 0usize..4,
    ) {
        let shards = [1usize, 2, 4, 7][shard_ix];
        let mut linear = engine_with(NeighborIndexKind::LinearScan);
        let mut sharded = engine_with_shards(NeighborIndexKind::Grid { side: None }, shards);
        for (i, &(x, y)) in points.iter().enumerate() {
            let t = i as f64 / 100.0;
            let p = DenseVector::from([x, y]);
            linear.insert(&p, t);
            sharded.insert(&p, t);
        }
        let t = points.len() as f64 / 100.0;
        linear.force_init();
        sharded.force_init();
        prop_assert_eq!(observe(&mut linear, t), observe(&mut sharded, t));
        for gx in -2..8 {
            for gy in -2..2 {
                let probe = DenseVector::from([gx as f64 * 2.0, gy as f64 * 2.0]);
                prop_assert_eq!(linear.cluster_of(&probe, t), sharded.cluster_of(&probe, t));
            }
        }
        // The shard stats must meter exactly the live population. The
        // CI harness knob only overrides *defaulted* (S = 1) configs, so
        // the configured count stays observable for every explicit
        // multi-shard engine even on the forced-shards leg.
        if shards > 1 || std::env::var_os("EDM_FORCE_SHARDS").is_none() {
            prop_assert_eq!(sharded.stats().shard_cells.len(), shards);
        }
        prop_assert_eq!(
            sharded.stats().shard_cells.iter().sum::<u64>(),
            sharded.n_cells() as u64
        );
        prop_assert!(sharded.check_index().is_ok());
    }

    /// The cover tree is observationally equivalent to the linear scan on
    /// random streams — same contract the grid carries, proven through
    /// measured-distance pruning instead of bucket geometry. Runs in both
    /// serial and (under `EDM_FORCE_INGEST_THREADS`, which the CI matrix
    /// sets) forced-parallel ingest, where the tree's maximally
    /// conservative `probe_conflicts` must keep probe replay exact.
    #[test]
    fn cover_tree_matches_linear_scan(
        points in prop::collection::vec(((-5.0f64..15.0), (-3.0f64..3.0)), 60..300),
    ) {
        let mut linear = engine_with(NeighborIndexKind::LinearScan);
        let mut cover = engine_with(NeighborIndexKind::CoverTree);
        for (i, &(x, y)) in points.iter().enumerate() {
            let t = i as f64 / 100.0;
            let p = DenseVector::from([x, y]);
            linear.insert(&p, t);
            cover.insert(&p, t);
        }
        let t = points.len() as f64 / 100.0;
        linear.force_init();
        cover.force_init();
        prop_assert_eq!(observe(&mut linear, t), observe(&mut cover, t));
        for gx in -2..8 {
            for gy in -2..2 {
                let probe = DenseVector::from([gx as f64 * 2.0, gy as f64 * 2.0]);
                prop_assert_eq!(linear.cluster_of(&probe, t), cover.cluster_of(&probe, t));
            }
        }
        // The tree never probes more than the scan would (it degenerates
        // to the scan at worst), and its population stat mirrors the slab.
        prop_assert!(cover.stats().index_probed <= linear.stats().index_probed);
        prop_assert_eq!(cover.stats().shard_cells.len(), 1);
        prop_assert_eq!(cover.stats().shard_cells[0], cover.n_cells() as u64);
        prop_assert!(cover.check_index().is_ok());
    }

    /// ΔT_del recycling interleavings keep the cover tree exact and
    /// coherent: removals re-hang whole subtrees through
    /// triangle-inequality radius bounds, and neither a stale node nor an
    /// unsound covering radius may survive (`check_index` verifies every
    /// node against every ancestor's radius, and the equivalence against
    /// the linear scan proves the searches stayed exact).
    #[test]
    fn cover_tree_matches_linear_scan_across_recycling_interleavings(
        ops in prop::collection::vec(
            ((-20.0f64..20.0), (-20.0f64..20.0), any::<bool>()),
            40..200,
        ),
    ) {
        let cfg = |kind| {
            EdmConfig::builder(0.8)
                .rate(100.0)
                .beta_for_threshold(3.0)
                .init_points(10)
                .tau_every(16)
                .maintenance_every(4)
                .recycle_horizon(5.0)
                .neighbor_index(kind)
                .build()
                .expect("valid test configuration")
        };
        let mut linear = EdmStream::new(cfg(NeighborIndexKind::LinearScan), Euclidean);
        let mut cover = EdmStream::new(cfg(NeighborIndexKind::CoverTree), Euclidean);
        let mut t = 0.0;
        for (i, &(x, y, jump)) in ops.iter().enumerate() {
            t += if jump { 7.0 } else { 0.01 };
            let p = DenseVector::from([x, y]);
            linear.insert(&p, t);
            cover.insert(&p, t);
            prop_assert!(cover.check_index().is_ok(), "index diverged: {:?}", cover.check_index());
            if i % 7 == 0 && cover.is_initialized() {
                prop_assert!(cover.check_invariants(t).is_ok(), "{:?}", cover.check_invariants(t));
            }
        }
        linear.force_init();
        cover.force_init();
        prop_assert_eq!(observe(&mut linear, t), observe(&mut cover, t));
        prop_assert!(cover.check_index().is_ok());
        prop_assert!(cover.check_invariants(t).is_ok());
        if ops.iter().filter(|(_, _, j)| *j).count() >= 5 {
            prop_assert!(cover.stats().recycled > 0, "recycling never fired");
        }
    }

    /// Runtime index auto-selection is an access-path decision, never a
    /// policy: an engine on [`NeighborIndexKind::Auto`] must match the
    /// linear scan exactly even when the stream drives it through a live
    /// grid → cover-tree switch *and* ΔT_del recycling interleavings. A
    /// high-dimensional warmup lattice clears the selector's population
    /// floor so the sweep-regime signal forces a confirmed switch before
    /// the random interleavings begin; the switch drains and refiles the
    /// whole index mid-stream, which is exactly the moment staleness
    /// bugs would surface.
    #[test]
    fn auto_index_matches_linear_scan_across_switch_and_recycling(
        ops in prop::collection::vec((0usize..1024, any::<bool>()), 40..160),
    ) {
        let cfg = |kind| {
            EdmConfig::builder(0.8)
                .rate(100.0)
                .beta_for_threshold(3.0)
                .init_points(10)
                .tau_every(16)
                .maintenance_every(4)
                .recycle_horizon(5.0)
                .neighbor_index(kind)
                .build()
                .expect("valid test configuration")
        };
        // 8-d lattice points (pairwise distance ≥ 2 > r): every distinct
        // code founds a cell, repeats absorb.
        let lattice = |u: usize| {
            DenseVector::from(std::array::from_fn::<f64, 8, _>(|k| {
                ((u >> (2 * k)) & 3) as f64 * 2.0
            }))
        };
        let mut linear = EdmStream::new(cfg(NeighborIndexKind::LinearScan), Euclidean);
        let mut auto = EdmStream::new(cfg(NeighborIndexKind::Auto), Euclidean);
        let mut t = 0.0;
        for i in 0..300usize {
            t += 0.01;
            let p = lattice(i);
            linear.insert(&p, t);
            auto.insert(&p, t);
        }
        prop_assert_eq!(auto.stats().index_switches, 1, "warmup must confirm the switch");
        prop_assert_eq!(auto.index_label(), "auto:cover-tree");
        for (i, &(u, jump)) in ops.iter().enumerate() {
            t += if jump { 7.0 } else { 0.01 };
            let p = lattice(u);
            linear.insert(&p, t);
            auto.insert(&p, t);
            prop_assert!(auto.check_index().is_ok(), "index diverged: {:?}", auto.check_index());
            if i % 7 == 0 && auto.is_initialized() {
                prop_assert!(auto.check_invariants(t).is_ok(), "{:?}", auto.check_invariants(t));
            }
        }
        linear.force_init();
        auto.force_init();
        prop_assert_eq!(observe(&mut linear, t), observe(&mut auto, t));
        prop_assert!(auto.check_index().is_ok());
        prop_assert!(auto.check_invariants(t).is_ok());
        if ops.iter().filter(|(_, j)| *j).count() >= 5 {
            prop_assert!(auto.stats().recycled > 0, "recycling never fired");
        }
    }

    /// Coherence under recycling holds per shard too: arbitrary
    /// interleavings of births, absorptions, and ΔT_del expiries keep
    /// every shard mirroring its slice of the slab and the idle queue
    /// covering the whole reservoir.
    #[test]
    fn sharded_index_mirrors_slab_across_recycling_interleavings(
        ops in prop::collection::vec(
            ((-20.0f64..20.0), (-20.0f64..20.0), any::<bool>()),
            40..160,
        ),
        shard_ix in 0usize..3,
    ) {
        let shards = [2usize, 4, 7][shard_ix];
        let cfg = EdmConfig::builder(0.8)
            .rate(100.0)
            .beta_for_threshold(3.0)
            .init_points(10)
            .tau_every(16)
            .maintenance_every(4)
            .recycle_horizon(5.0)
            .shards(NonZeroUsize::new(shards).expect("nonzero"))
            .build()
            .expect("valid test configuration");
        let mut e = EdmStream::new(cfg, Euclidean);
        let mut t = 0.0;
        for (i, &(x, y, jump)) in ops.iter().enumerate() {
            t += if jump { 7.0 } else { 0.01 };
            e.insert(&DenseVector::from([x, y]), t);
            prop_assert!(e.check_index().is_ok(), "index diverged: {:?}", e.check_index());
            if i % 7 == 0 && e.is_initialized() {
                prop_assert!(e.check_invariants(t).is_ok(), "{:?}", e.check_invariants(t));
            }
        }
        e.force_init();
        prop_assert!(e.check_index().is_ok());
        prop_assert!(e.check_invariants(t).is_ok());
    }
}
