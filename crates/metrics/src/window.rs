//! The sliding evaluation window.
//!
//! Stream clustering quality is evaluated over a *horizon* of recent
//! points (the CMM paper's setup, which the reproduction follows): every
//! `eval_every` points, the most recent `horizon` points are handed to the
//! clusterer's `cluster_of` query and scored against ground truth with
//! freshness weights from the decay model.

use edm_common::decay::DecayModel;
use edm_common::metric::Metric;
use edm_common::time::Timestamp;
use edm_data::clusterer::StreamClusterer;
use edm_data::stream::StreamPoint;

use crate::cmm::{cmm, CmmConfig, EvalObject};
use crate::external::{self, Contingency};

/// Configuration of the evaluation window.
#[derive(Debug, Clone, Copy)]
pub struct WindowConfig {
    /// Number of most-recent points scored per evaluation.
    pub horizon: usize,
    /// CMM configuration.
    pub cmm: CmmConfig,
    /// Decay model providing freshness weights.
    pub decay: DecayModel,
}

impl Default for WindowConfig {
    fn default() -> Self {
        WindowConfig { horizon: 500, cmm: CmmConfig::default(), decay: DecayModel::paper_default() }
    }
}

/// One evaluation result.
#[derive(Debug, Clone, Copy)]
pub struct WindowScores {
    /// Stream time of the evaluation.
    pub t: Timestamp,
    /// Cluster Mapping Measure.
    pub cmm: f64,
    /// Purity over double-labeled objects.
    pub purity: f64,
    /// Pairwise F1.
    pub f1: f64,
    /// Normalized mutual information.
    pub nmi: f64,
    /// Adjusted Rand index.
    pub ari: f64,
    /// Clusters reported by the algorithm.
    pub n_clusters: usize,
}

/// Evaluation-window driver.
#[derive(Debug, Clone)]
pub struct EvalWindow {
    cfg: WindowConfig,
}

impl EvalWindow {
    /// Creates a window driver.
    pub fn new(cfg: WindowConfig) -> Self {
        assert!(cfg.horizon > 0, "horizon must be positive");
        EvalWindow { cfg }
    }

    /// Scores `clusterer` on the last `horizon` points of `seen` at time
    /// `t`. `seen` must be in arrival order.
    ///
    /// Runs the clusterer's deferred work once
    /// ([`StreamClusterer::prepare`]), then issues only read-only queries —
    /// two-phase baselines pay their offline step exactly once per
    /// evaluation instead of once per query.
    pub fn evaluate<P, M: Metric<P>>(
        &self,
        clusterer: &mut dyn StreamClusterer<P>,
        metric: &M,
        seen: &[StreamPoint<P>],
        t: Timestamp,
    ) -> WindowScores {
        clusterer.prepare(t);
        let lo = seen.len().saturating_sub(self.cfg.horizon);
        let window = &seen[lo..];
        let mut clusters: Vec<Option<usize>> = Vec::with_capacity(window.len());
        for p in window {
            clusters.push(clusterer.cluster_of(&p.payload, t));
        }
        let objs: Vec<EvalObject<'_, P>> = window
            .iter()
            .zip(&clusters)
            .map(|(p, &cluster)| EvalObject {
                payload: &p.payload,
                weight: self.cfg.decay.freshness(t, p.ts),
                class: p.label,
                cluster,
            })
            .collect();
        let cmm_score = cmm(&objs, metric, &self.cfg.cmm);
        let truth: Vec<Option<u32>> = window.iter().map(|p| p.label).collect();
        let cont = Contingency::new(&clusters, &truth);
        let (_, _, f1) = external::pairwise_f1(&cont);
        WindowScores {
            t,
            cmm: cmm_score,
            purity: external::purity(&cont),
            f1,
            nmi: external::nmi(&cont),
            ari: external::ari(&cont),
            n_clusters: clusterer.n_clusters(t),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edm_common::metric::Euclidean;
    use edm_common::point::DenseVector;

    /// Oracle clusterer: splits on x < 5 — exactly the ground truth rule.
    struct Oracle;
    impl StreamClusterer<DenseVector> for Oracle {
        fn name(&self) -> &'static str {
            "oracle"
        }
        fn insert(&mut self, _p: &DenseVector, _t: Timestamp) {}
        fn cluster_of(&self, p: &DenseVector, _t: Timestamp) -> Option<usize> {
            Some((p.coords()[0] >= 5.0) as usize)
        }
        fn n_clusters(&self, _t: Timestamp) -> usize {
            2
        }
        fn n_summaries(&self) -> usize {
            0
        }
    }

    fn stream() -> Vec<StreamPoint<DenseVector>> {
        (0..100)
            .map(|i| {
                let x = if i % 2 == 0 { 0.1 * (i % 7) as f64 } else { 10.0 + 0.1 * (i % 7) as f64 };
                StreamPoint::new(DenseVector::from([x]), i as f64 / 100.0, Some((i % 2) as u32))
            })
            .collect()
    }

    #[test]
    fn oracle_scores_perfectly() {
        let w = EvalWindow::new(WindowConfig::default());
        let pts = stream();
        let s = w.evaluate(&mut Oracle, &Euclidean, &pts, 1.0);
        assert_eq!(s.cmm, 1.0);
        assert_eq!(s.purity, 1.0);
        assert_eq!(s.f1, 1.0);
        assert_eq!(s.n_clusters, 2);
    }

    #[test]
    fn window_restricts_to_horizon() {
        let w = EvalWindow::new(WindowConfig { horizon: 10, ..Default::default() });
        // A clusterer that counts queries: ensures only `horizon` are made.
        struct Counting(std::cell::Cell<usize>);
        impl StreamClusterer<DenseVector> for Counting {
            fn name(&self) -> &'static str {
                "counting"
            }
            fn insert(&mut self, _p: &DenseVector, _t: Timestamp) {}
            fn cluster_of(&self, _p: &DenseVector, _t: Timestamp) -> Option<usize> {
                self.0.set(self.0.get() + 1);
                Some(0)
            }
            fn n_clusters(&self, _t: Timestamp) -> usize {
                1
            }
            fn n_summaries(&self) -> usize {
                0
            }
        }
        let mut c = Counting(std::cell::Cell::new(0));
        let pts = stream();
        let _ = w.evaluate(&mut c, &Euclidean, &pts, 1.0);
        assert_eq!(c.0.get(), 10);
    }

    #[test]
    fn misplacing_a_distinct_point_is_penalized() {
        // An adversary that sends one specific far-right point to the left
        // cluster: a genuine fault (the point is tightly connected to its
        // own class and alien to the mapped one), so CMM must drop.
        struct Adversary;
        impl StreamClusterer<DenseVector> for Adversary {
            fn name(&self) -> &'static str {
                "adversary"
            }
            fn insert(&mut self, _p: &DenseVector, _t: Timestamp) {}
            fn cluster_of(&self, p: &DenseVector, _t: Timestamp) -> Option<usize> {
                let x = p.coords()[0];
                if (x - 10.35).abs() < 1e-9 {
                    Some(0) // the sabotage
                } else {
                    Some((x >= 5.0) as usize)
                }
            }
            fn n_clusters(&self, _t: Timestamp) -> usize {
                2
            }
            fn n_summaries(&self) -> usize {
                0
            }
        }
        let w = EvalWindow::new(WindowConfig::default());
        let mut pts = stream();
        pts.push(StreamPoint::new(DenseVector::from([10.35]), 1.0, Some(1)));
        let s = w.evaluate(&mut Adversary, &Euclidean, &pts, 1.0);
        assert!(s.cmm < 1.0, "fault must be penalized: {}", s.cmm);
        assert!((0.0..=1.0).contains(&s.cmm));
        // The classic metrics notice it too.
        assert!(s.purity < 1.0);
    }
}
