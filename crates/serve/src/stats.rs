//! Serving-tier observability: atomic counters and their frozen view.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Duration;

/// Live counters shared between producers, the writer thread, and
/// readers. All increments are `Relaxed` — they are statistics, not
/// synchronization.
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub(crate) enqueued_points: AtomicU64,
    pub(crate) ingested_points: AtomicU64,
    pub(crate) dropped_points: AtomicU64,
    pub(crate) rejected_points: AtomicU64,
    pub(crate) reads_cluster_of: AtomicU64,
    pub(crate) reads_n_clusters: AtomicU64,
    pub(crate) reads_decision_graph: AtomicU64,
    pub(crate) reads_snapshot: AtomicU64,
    pub(crate) reads_digest: AtomicU64,
    pub(crate) net_connections: AtomicU64,
    pub(crate) net_rejected_connections: AtomicU64,
    pub(crate) net_queries: AtomicU64,
    pub(crate) net_query_errors: AtomicU64,
    pub(crate) net_protocol_errors: AtomicU64,
}

impl Counters {
    pub(crate) fn add(&self, counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Relaxed);
    }
}

/// A frozen view of the serving tier's health, from
/// [`crate::ServeHandle::stats`] / [`crate::EdmServer::stats`].
///
/// Point counters are **points**, queue depths are **batches** (the queue
/// bounds batches, whatever their size).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeStats {
    /// Generation of the currently published snapshot (see
    /// [`edm_core::ClusterSnapshot::generation`]): total publications so
    /// far, 1-based.
    pub generation: u64,
    /// Wall-clock time since the current snapshot was published.
    pub snapshot_age: Duration,
    /// Batches currently queued for the writer.
    pub queue_depth: usize,
    /// Deepest the queue has ever been — the backpressure early-warning
    /// number: near capacity means the writer cannot keep up.
    pub queue_depth_hwm: usize,
    /// Points accepted into the queue (includes still-queued ones).
    pub enqueued_points: u64,
    /// Points the writer has fed through `insert_batch`.
    pub ingested_points: u64,
    /// Points discarded by the `DropOldest` policy.
    pub dropped_points: u64,
    /// Points refused by the `Reject` policy.
    pub rejected_points: u64,
    /// `cluster_of` calls served.
    pub reads_cluster_of: u64,
    /// `n_clusters` calls served.
    pub reads_n_clusters: u64,
    /// `decision_graph` calls served.
    pub reads_decision_graph: u64,
    /// Raw snapshot loads served (`latest` / `generation` /
    /// `snapshot_age`).
    pub reads_snapshot: u64,
    /// Evolution-digest reads served (`digest_since` / `digest_between` /
    /// `digest_generations`).
    pub reads_digest: u64,
    /// TCP connections accepted by the network front end
    /// ([`crate::net::NetServer`]); 0 when no front end is attached.
    pub net_connections: u64,
    /// TCP connections refused at the configured connection cap (the
    /// client got a typed `busy` protocol error and was closed).
    pub net_connections_rejected: u64,
    /// Well-formed queries answered over the network (with an `ok` *or*
    /// a typed query-error response — both count as served).
    pub net_queries: u64,
    /// Network answers that carried a typed [`crate::QueryError`]
    /// (e.g. a digest window already evicted). A subset of
    /// [`ServeStats::net_queries`].
    pub net_query_errors: u64,
    /// Malformed frames answered with a typed protocol error (bad JSON,
    /// unknown query tag, oversized length prefix).
    pub net_protocol_errors: u64,
    /// The writer thread panicked; ingest fails, reads serve the last
    /// published snapshot.
    pub poisoned: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let c = Counters::default();
        c.add(&c.enqueued_points, 3);
        c.add(&c.enqueued_points, 4);
        assert_eq!(c.enqueued_points.load(Relaxed), 7);
    }
}
