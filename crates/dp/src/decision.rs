//! The (ρ, δ) decision graph (paper Fig 2b, Fig 15).
//!
//! Density Peaks picks cluster centers by eye: centers stand out in the
//! upper-right of a ρ-δ scatter. EDMStream automates the "eye" — the
//! initial τ₀ comes from a user picking a horizontal line on this graph,
//! and the adaptive-τ machinery (paper §5) learns the preference behind
//! that pick. This module materializes the graph, suggests a τ via the
//! largest-gap heuristic (standing in for the user of §5), and renders an
//! ASCII scatter for the harness outputs of Figs 2 and 15.

use serde::{Deserialize, Serialize};

/// A decision graph: one (ρ, δ) pair per point or cluster-cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionGraph {
    pairs: Vec<(f64, f64)>,
}

impl DecisionGraph {
    /// Builds a graph from parallel ρ and δ slices.
    ///
    /// # Panics
    /// Panics when the slices disagree in length.
    pub fn new(rho: &[f64], delta: &[f64]) -> Self {
        assert_eq!(rho.len(), delta.len(), "rho/delta must be parallel");
        DecisionGraph { pairs: rho.iter().copied().zip(delta.iter().copied()).collect() }
    }

    /// The underlying (ρ, δ) pairs.
    pub fn pairs(&self) -> &[(f64, f64)] {
        &self.pairs
    }

    /// Number of points in the graph.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Number of centers a horizontal line at `tau` would select among
    /// points denser than `xi` (finite δ assumed for non-roots; the global
    /// peak's large δ naturally lands above any sensible τ).
    pub fn centers_at(&self, tau: f64, xi: f64) -> usize {
        self.pairs.iter().filter(|(r, d)| *r > xi && *d > tau).count()
    }

    /// Suggests τ₀ the way the paper's interactive user would: find the
    /// largest multiplicative gap in the sorted δ values (ignoring points
    /// with ρ ≤ ξ) and cut in the middle of it. Returns `None` when fewer
    /// than two eligible points exist.
    ///
    /// The *largest gap* is exactly what makes centers "anomalously large
    /// in δ" (paper §2.1); cutting inside it separates peak δs from bulk δs.
    pub fn suggest_tau(&self, xi: f64) -> Option<f64> {
        let mut ds: Vec<f64> =
            self.pairs.iter().filter(|(r, d)| *r > xi && d.is_finite()).map(|(_, d)| *d).collect();
        if ds.len() < 2 {
            return None;
        }
        ds.sort_by(|a, b| a.partial_cmp(b).expect("delta never NaN"));
        let mut best = (0.0f64, None::<f64>);
        for w in ds.windows(2) {
            let (lo, hi) = (w[0].max(1e-12), w[1]);
            let gap = hi / lo;
            if gap > best.0 {
                best = (gap, Some(0.5 * (w[0] + w[1])));
            }
        }
        best.1
    }

    /// Renders an ASCII scatter `rows × cols` with `*` marks, plus optional
    /// horizontal τ lines drawn as `-` (labeled by the caller). Axes: x = ρ
    /// (left→right), y = δ (bottom→top). Used by the Fig 2/15 harness.
    pub fn render_ascii(&self, rows: usize, cols: usize, tau_lines: &[f64]) -> String {
        assert!(rows >= 2 && cols >= 2);
        let finite: Vec<(f64, f64)> =
            self.pairs.iter().copied().filter(|(r, d)| r.is_finite() && d.is_finite()).collect();
        if finite.is_empty() {
            return String::from("(empty decision graph)\n");
        }
        let max_r = finite.iter().map(|p| p.0).fold(0.0, f64::max).max(1e-12);
        let max_d = finite
            .iter()
            .map(|p| p.1)
            .chain(tau_lines.iter().copied())
            .fold(0.0, f64::max)
            .max(1e-12);
        let mut grid = vec![vec![' '; cols]; rows];
        for &tau in tau_lines {
            let row = ((1.0 - tau / max_d) * (rows - 1) as f64).round() as usize;
            if row < rows {
                for c in grid[row].iter_mut() {
                    *c = '-';
                }
            }
        }
        for (r, d) in finite {
            let col = ((r / max_r) * (cols - 1) as f64).round() as usize;
            let row = ((1.0 - d / max_d) * (rows - 1) as f64).round() as usize;
            grid[row.min(rows - 1)][col.min(cols - 1)] = '*';
        }
        let mut out = String::with_capacity(rows * (cols + 2));
        for row in grid {
            out.push('|');
            out.extend(row);
            out.push('\n');
        }
        out.push('+');
        out.extend(std::iter::repeat_n('-', cols));
        out.push('\n');
        out.push_str(&format!("rho: 0..{max_r:.3}  delta: 0..{max_d:.3}\n"));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suggest_tau_finds_the_big_gap() {
        // Bulk δs around 1, two peaks around 10 → τ in between.
        let rho = vec![5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        let delta = vec![0.9, 1.0, 1.1, 1.2, 10.0, 11.0];
        let g = DecisionGraph::new(&rho, &delta);
        let tau = g.suggest_tau(0.0).unwrap();
        assert!(tau > 1.2 && tau < 10.0, "tau {tau}");
        assert_eq!(g.centers_at(tau, 0.0), 2);
    }

    #[test]
    fn suggest_tau_ignores_low_density_points() {
        // A sparse point with a huge δ must not fool the heuristic.
        let rho = vec![0.1, 5.0, 6.0, 7.0];
        let delta = vec![50.0, 1.0, 1.1, 9.0];
        let g = DecisionGraph::new(&rho, &delta);
        let tau = g.suggest_tau(1.0).unwrap();
        assert!(tau > 1.1 && tau < 9.0, "tau {tau}");
    }

    #[test]
    fn suggest_tau_needs_two_points() {
        let g = DecisionGraph::new(&[1.0], &[2.0]);
        assert_eq!(g.suggest_tau(0.0), None);
    }

    #[test]
    fn centers_at_counts_upper_right_region() {
        let g = DecisionGraph::new(&[1.0, 5.0, 9.0], &[0.5, 3.0, 8.0]);
        assert_eq!(g.centers_at(2.0, 2.0), 2);
        assert_eq!(g.centers_at(5.0, 2.0), 1);
        assert_eq!(g.centers_at(10.0, 2.0), 0);
    }

    #[test]
    fn ascii_render_contains_marks_and_tau_line() {
        let g = DecisionGraph::new(&[1.0, 10.0], &[1.0, 10.0]);
        let art = g.render_ascii(10, 20, &[5.0]);
        assert!(art.contains('*'));
        assert!(art.contains('-'));
        assert!(art.contains("rho: 0..10"));
    }

    #[test]
    #[should_panic(expected = "parallel")]
    fn rejects_mismatched_slices() {
        DecisionGraph::new(&[1.0], &[]);
    }
}
