//! # edm-common
//!
//! Shared substrate for the EDMStream reproduction: data point
//! representations, distance metrics, the exponential decay model that
//! underpins every density computation in the paper, timestamps and stream
//! clocks, a fast hash map for integer keys, and small statistics helpers.
//!
//! The crates higher in the stack (`edm-data`, `edm-dp`, `edm-core`,
//! `edm-baselines`, `edm-metrics`) all build on these primitives, so the
//! types here are deliberately small, `Clone`-cheap where possible, and
//! free of any clustering policy.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod decay;
pub mod hash;
pub mod metric;
pub mod point;
pub mod stats;
pub mod time;

pub use decay::DecayModel;
pub use metric::{Euclidean, Jaccard, Metric};
pub use point::{DenseVector, GridCoords, TokenSet};
pub use time::{StreamClock, Timestamp};
