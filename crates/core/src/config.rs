//! Engine configuration.

use edm_common::decay::DecayModel;
use serde::{Deserialize, Serialize};

use crate::filters::FilterConfig;
use crate::tau::TauMode;

/// Configuration of the EDMStream engine.
///
/// Defaults reproduce the paper's §6.1 setup: `a = 0.998`, `λ = 1`,
/// `β = 0.0021`, stream rate 1,000 pt/s, both update filters on, adaptive τ
/// with α learned from the initial decision graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EdmConfig {
    /// Cluster-cell radius `r` (paper Table 2 lists one per dataset; §6.7
    /// recommends the 0.5–2 % pairwise-distance quantile).
    pub r: f64,
    /// Decay model (paper Eq. 3).
    pub decay: DecayModel,
    /// Active-cell threshold factor β (paper §4.3).
    pub beta: f64,
    /// Expected stream rate `v` in points/sec — sets the active threshold
    /// `β·v/(1−a^λ)` and the recycling horizon ΔT_del.
    pub rate: f64,
    /// Number of points cached before the initialization step (paper §4.1).
    pub init_points: usize,
    /// τ policy (static or adaptive; paper §5).
    pub tau_mode: TauMode,
    /// The "user's pick" τ₀ from the initial decision graph; `None` uses
    /// the largest-gap heuristic to simulate the interaction step.
    pub tau0: Option<f64>,
    /// Re-optimize τ every this many points (adaptive mode only).
    pub tau_every: u64,
    /// Run the decay/recycling sweep every this many points.
    pub maintenance_every: u64,
    /// Dependency-update filters (paper Theorems 1–2; Fig 11 ablation).
    pub filters: FilterConfig,
    /// Override for the reservoir recycling horizon in seconds. `None`
    /// uses the paper's Theorem 3 formula. The override exists because the
    /// paper's formula divides by `λ·v` (its §4.3–4.4 analysis counts decay
    /// per *point* while Eq. 3 decays per *second*); for strongly decaying
    /// configurations (large λ) the formula degenerates to milliseconds
    /// and would delete growing cells between absorptions.
    pub recycle_horizon: Option<f64>,
    /// Scale the activation threshold by the stream's accumulated decayed
    /// mass, `thr(t) = β·v·(1−a^{λ·age})/(1−a^λ)`. The paper's fixed
    /// threshold is this formula's steady state (age → ∞, reached after
    /// ~2000 s with the default decay); the age adjustment makes early
    /// stream behavior — and scaled-down reproduction runs — consistent
    /// with full-length behavior. Disable for the strict paper formula.
    pub age_adjusted_threshold: bool,
    /// Record evolution events (Figs 7–8). Disable for pure-throughput runs.
    pub track_evolution: bool,
}

impl EdmConfig {
    /// Paper-default configuration for a dataset with cell radius `r`.
    pub fn new(r: f64) -> Self {
        EdmConfig {
            r,
            decay: DecayModel::paper_default(),
            beta: 0.0021,
            rate: 1_000.0,
            init_points: 1_000,
            tau_mode: TauMode::Adaptive { alpha: None },
            tau0: None,
            tau_every: 256,
            maintenance_every: 64,
            filters: FilterConfig::all(),
            recycle_horizon: None,
            age_adjusted_threshold: true,
            track_evolution: true,
        }
    }

    /// The active-cell density threshold `β·v/(1−a^λ)` this config implies.
    pub fn active_threshold(&self) -> f64 {
        self.decay.active_threshold(self.beta, self.rate)
    }

    /// The safe-deletion horizon ΔT_del this config implies (Theorem 3,
    /// unless overridden by `recycle_horizon`).
    pub fn delta_t_del(&self) -> f64 {
        self.recycle_horizon.unwrap_or_else(|| self.decay.delta_t_del(self.beta, self.rate))
    }

    /// Theoretical reservoir bound `ΔT_del·v + 1/β` (paper §4.4, Fig 16).
    pub fn reservoir_bound(&self) -> f64 {
        self.delta_t_del() * self.rate + 1.0 / self.beta
    }

    /// Validates parameter ranges; called by the engine constructor.
    ///
    /// # Panics
    /// Panics on invalid combinations (non-positive r/rate, β outside the
    /// admissible range of §4.3, zero cadences).
    pub fn validate(&self) {
        assert!(self.r > 0.0, "cell radius must be positive");
        assert!(self.rate > 0.0, "stream rate must be positive");
        let (lo, hi) = self.decay.beta_range(self.rate);
        assert!(
            self.beta > lo && self.beta < hi,
            "beta {} outside admissible range ({lo:e}, {hi})",
            self.beta
        );
        assert!(self.init_points > 0, "init_points must be positive");
        assert!(self.tau_every > 0, "tau_every must be positive");
        assert!(self.maintenance_every > 0, "maintenance_every must be positive");
        if let TauMode::Static(t) = self.tau_mode {
            assert!(t > 0.0, "static tau must be positive");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_are_consistent() {
        let cfg = EdmConfig::new(0.3);
        cfg.validate();
        assert!((cfg.active_threshold() - 1050.0).abs() < 1e-6);
        assert!(cfg.delta_t_del() > 0.0);
        assert!(cfg.reservoir_bound() > cfg.delta_t_del() * cfg.rate);
        assert!(cfg.track_evolution);
    }

    #[test]
    #[should_panic(expected = "radius must be positive")]
    fn rejects_zero_radius() {
        EdmConfig::new(0.0).validate();
    }

    #[test]
    #[should_panic(expected = "outside admissible range")]
    fn rejects_beta_below_lower_bound() {
        let mut cfg = EdmConfig::new(1.0);
        cfg.beta = 1e-9;
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "static tau")]
    fn rejects_nonpositive_static_tau() {
        let mut cfg = EdmConfig::new(1.0);
        cfg.tau_mode = TauMode::Static(0.0);
        cfg.validate();
    }

    #[test]
    fn beta_can_be_tuned_for_short_streams() {
        // Short demo streams (SDS) need a lower activation threshold; the
        // admissible range allows it.
        let mut cfg = EdmConfig::new(0.3);
        cfg.beta = 1e-4;
        cfg.validate();
        assert!((cfg.active_threshold() - 50.0).abs() < 1e-9);
    }
}
