//! Batch-ingest throughput: serial per-point loop vs. the two-phase
//! probe-then-commit pipeline at 1/2/4 ingest threads.
//!
//! The scenario is the steady state the paper's throughput claims rest
//! on: a large reservoir of cells (every point absorbed, nothing created
//! or recycled mid-batch), where per-point cost is dominated by the
//! assignment probe — exactly the phase `ingest_threads` fans out. The
//! space is 8-dimensional with r-separated seeds crowded eight to a
//! bucket: the high-dimensional regime of the paper's datasets (KDD
//! d = 34, PAMAP2 d = 51), where the grid degenerates to occupied-bucket
//! sweeps and a probe costs microseconds — the work worth fanning out.
//! Batch sizes 64/256/1024 bracket the spawn-amortization question:
//! scoped workers are spawned per round, so small batches pay
//! proportionally more coordination.
//!
//! Besides the console table, the run rewrites the `parallel_batch_ingest`
//! (and `host`) sections of the committed `BENCH_ingest.json` via
//! [`edm_bench::report::merge_bench_json`], so the perf trajectory is
//! tracked machine-readably across PRs. **Read the `host.cpus` field
//! before reading speedups**: on a single-core container the fan-out
//! cannot beat the serial loop (the numbers then price the coordination
//! overhead); the ≥ 1.5× probe-phase scaling claim is for `cpus ≥ 4`.

use std::num::NonZeroUsize;
use std::path::Path;
use std::time::Instant;

use edm_bench::report::merge_bench_json;
use edm_common::metric::Euclidean;
use edm_common::point::DenseVector;
use edm_core::{EdmConfig, EdmStream};

/// Reservoir population for the steady-state scenario (the acceptance
/// bar asks for ≥ 8k live cells).
const RESERVOIR_CELLS: usize = 8_192;

/// Points pushed through each (threads, batch) configuration.
const POINTS_PER_CONFIG: usize = 1 << 16;

/// Dimensionality of the bench space.
const DIM: usize = 8;

/// Cells per grid bucket (see [`seed`]): mean occupancy sits exactly at
/// the auto-tuner's upper band edge, so the layout is stable.
const PER_BUCKET: usize = 8;

/// The `j`-th reservoir seed: a 2-d lattice of bucket sites (spacing 2.0
/// on dims 0–1), each crowded with [`PER_BUCKET`] seeds that are pairwise
/// farther than r apart yet share the bucket — offsets 0.45·mask over
/// dims 2–7 with even-popcount masks give pairwise distance at least
/// 0.45·√2 ≈ 0.64 (above r = 0.5) while every coordinate stays inside
/// the 0.5-cube. This is how r-separated seeds really pack in high
/// dimensions, and it pushes every probe onto the occupied-bucket sweep
/// path.
fn seed(j: usize, lattice_side: usize) -> DenseVector {
    /// Six-bit even-popcount masks, pairwise Hamming distance ≥ 2.
    const MASKS: [u8; PER_BUCKET] =
        [0b000000, 0b000011, 0b000101, 0b000110, 0b001001, 0b001010, 0b001100, 0b010010];
    let site = j / PER_BUCKET;
    let mask = MASKS[j % PER_BUCKET];
    let mut c = vec![0.0; DIM];
    c[0] = (site % lattice_side) as f64 * 2.0;
    c[1] = (site / lattice_side) as f64 * 2.0;
    for (bit, coord) in c.iter_mut().skip(2).enumerate() {
        if mask >> bit & 1 == 1 {
            *coord = 0.45;
        }
    }
    DenseVector::new(c)
}

/// Builds a warmed engine holding `RESERVOIR_CELLS` reservoir cells in
/// the crowded 8-d layout, with the given thread knob.
fn seeded_engine(threads: usize) -> (EdmStream<DenseVector, Euclidean>, f64) {
    let cfg = EdmConfig::builder(0.5)
        .rate(1_000.0)
        .beta_for_threshold(1e5)
        .age_adjusted_threshold(false)
        .init_points(1)
        .tau_every(1 << 40)
        .maintenance_every(64)
        .recycle_horizon(f64::MAX)
        .track_evolution(false)
        .ingest_threads(NonZeroUsize::new(threads).expect("bench thread counts are nonzero"))
        .build()
        .expect("valid bench configuration");
    let mut e = EdmStream::new(cfg, Euclidean);
    let lattice_side = (RESERVOIR_CELLS.div_ceil(PER_BUCKET) as f64).sqrt().ceil() as usize;
    let mut t = 0.0;
    for j in 0..RESERVOIR_CELLS {
        t += 1e-4;
        e.insert(&seed(j, lattice_side), t);
    }
    assert_eq!(e.n_cells(), RESERVOIR_CELLS, "every seed must found its own cell");
    (e, t)
}

/// Probe sites cycling over existing cells (jittered within r): always
/// absorbed, never a new cell, so batches exercise pure assignment.
fn probe_sites() -> Vec<DenseVector> {
    let lattice_side = (RESERVOIR_CELLS.div_ceil(PER_BUCKET) as f64).sqrt().ceil() as usize;
    (0..64)
        .map(|i| {
            // Sit on the mask-0 seed of site i, nudged within r on dim 0.
            let mut p = seed(i * PER_BUCKET, lattice_side);
            p.coords_mut()[0] += (i % 5) as f64 * 0.05;
            p
        })
        .collect()
}

struct Run {
    threads: usize,
    batch: usize,
    points_per_sec: f64,
    revalidation_rate: f64,
}

/// Streams `POINTS_PER_CONFIG` points through `insert_batch` in batches
/// of `batch`, timing only the ingest calls.
fn measure(threads: usize, batch: usize) -> Run {
    let (mut e, mut t) = seeded_engine(threads);
    let sites = probe_sites();
    let mut i = 0usize;
    let mut make_batch = |n: usize, t: &mut f64| -> Vec<(DenseVector, f64)> {
        (0..n)
            .map(|_| {
                *t += 1e-6;
                i += 1;
                (sites[i % sites.len()].clone(), *t)
            })
            .collect()
    };
    // Warm the pool (first parallel round sizes the slot buffers).
    let warm = make_batch(batch, &mut t);
    e.insert_batch(&warm);
    let rounds = POINTS_PER_CONFIG / batch;
    let batches: Vec<Vec<(DenseVector, f64)>> =
        (0..rounds).map(|_| make_batch(batch, &mut t)).collect();
    let reval_before = e.stats().probe_revalidations;
    let tasks_before = e.stats().probe_tasks;
    let start = Instant::now();
    for b in &batches {
        e.insert_batch(b);
    }
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(e.n_cells(), RESERVOIR_CELLS, "bench stream must not create or recycle cells");
    let tasks = (e.stats().probe_tasks - tasks_before).max(1);
    Run {
        threads,
        batch,
        points_per_sec: (rounds * batch) as f64 / elapsed,
        revalidation_rate: (e.stats().probe_revalidations - reval_before) as f64 / tasks as f64,
    }
}

fn main() {
    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "parallel_batch_ingest: {RESERVOIR_CELLS} reservoir cells, \
         {POINTS_PER_CONFIG} points/config, {cpus} cpu(s) available"
    );
    let mut runs: Vec<Run> = Vec::new();
    for &batch in &[64usize, 256, 1024] {
        for &threads in &[1usize, 2, 4] {
            let run = measure(threads, batch);
            println!(
                "parallel_batch_ingest/threads{}/batch{}: {:.0} points/s (reval {:.4})",
                run.threads, run.batch, run.points_per_sec, run.revalidation_rate
            );
            runs.push(run);
        }
    }
    for &batch in &[64usize, 256, 1024] {
        let base = runs
            .iter()
            .find(|r| r.threads == 1 && r.batch == batch)
            .expect("serial baseline measured")
            .points_per_sec;
        for r in runs.iter().filter(|r| r.batch == batch && r.threads > 1) {
            println!(
                "  speedup threads{} batch{}: {:.2}x vs serial",
                r.threads,
                batch,
                r.points_per_sec / base
            );
        }
    }

    // Machine-readable artifact (committed at the repo root).
    let entries: Vec<String> = runs
        .iter()
        .map(|r| {
            let base = runs
                .iter()
                .find(|b| b.threads == 1 && b.batch == r.batch)
                .expect("serial baseline measured")
                .points_per_sec;
            format!(
                "{{\"threads\": {}, \"batch\": {}, \"reservoir_cells\": {}, \
                 \"points_per_sec\": {:.0}, \"speedup_vs_serial\": {:.3}, \
                 \"revalidation_rate\": {:.5}}}",
                r.threads,
                r.batch,
                RESERVOIR_CELLS,
                r.points_per_sec,
                r.points_per_sec / base,
                r.revalidation_rate
            )
        })
        .collect();
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("BENCH_ingest.json");
    merge_bench_json(&path, "host", &format!("{{\"cpus\": {cpus}}}")).expect("write bench json");
    merge_bench_json(&path, "parallel_batch_ingest", &format!("[{}]", entries.join(", ")))
        .expect("write bench json");
    println!("[written {}]", path.display());
}
