//! Serving-tier configuration: queue sizing, backpressure, publication
//! cadence.

use std::num::{NonZeroU64, NonZeroUsize};
use std::time::Duration;

/// What [`crate::EdmServer::ingest`] does when the bounded queue is full.
///
/// | Policy | Producer sees | Data loss | Use when |
/// |---|---|---|---|
/// | `Block` | waits for queue space | none | the producer can tolerate latency (offline replay, batch ETL) |
/// | `DropOldest` | `Ok`, oldest queued batch discarded | oldest unprocessed data | freshest-data-wins telemetry; staleness is worse than loss |
/// | `Reject` | `Err(QueueFull)` immediately | caller's choice | the producer has its own retry/shed logic |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackpressurePolicy {
    /// Block the producer until the writer frees a slot (lossless).
    #[default]
    Block,
    /// Drop the oldest queued batch to make room (bounded staleness,
    /// lossy). Dropped points are counted in
    /// [`crate::ServeStats::dropped_points`].
    DropOldest,
    /// Fail fast with [`crate::ServeError::QueueFull`], leaving the queue
    /// untouched. Rejected points are counted in
    /// [`crate::ServeStats::rejected_points`].
    Reject,
}

/// Configuration of [`crate::EdmServer::spawn`].
///
/// Everything is valid by construction (non-zero types), so there is no
/// fallible builder. The defaults — 64-batch queue, publish after every
/// batch, no timer, `Block` — serve fresh snapshots losslessly and suit
/// tests and demos; production ingest at high rate usually raises
/// `publish_every_batches` (publication freezes the full cluster map).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bounded ingest queue capacity, **in batches** (whatever batch
    /// granularity the producer pushes). Bounds both memory and the
    /// worst-case snapshot staleness under `Block`.
    pub queue_capacity: NonZeroUsize,
    /// Publish a fresh snapshot after every K ingested batches.
    pub publish_every_batches: NonZeroU64,
    /// Additionally publish whenever this much wall-clock time passed
    /// since the last publication — keeps `snapshot_age` bounded on idle
    /// or slow streams. `None` disables the timer (publication is then
    /// purely batch-driven).
    pub publish_interval: Option<Duration>,
    /// Full-queue behavior.
    pub policy: BackpressurePolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: NonZeroUsize::new(64).unwrap(),
            publish_every_batches: NonZeroU64::new(1).unwrap(),
            publish_interval: None,
            policy: BackpressurePolicy::Block,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_lossless_and_fresh() {
        let cfg = ServeConfig::default();
        assert_eq!(cfg.queue_capacity.get(), 64);
        assert_eq!(cfg.publish_every_batches.get(), 1);
        assert!(cfg.publish_interval.is_none());
        assert_eq!(cfg.policy, BackpressurePolicy::Block);
        assert_eq!(BackpressurePolicy::default(), BackpressurePolicy::Block);
    }
}
