//! Criterion micro-bench: EDMStream per-point insert latency on each
//! dataset surrogate (the microscopic view of paper Fig 9).
//!
//! Besides the criterion samples, the run rewrites the `insert_latency`
//! section of the committed `BENCH_ingest.json` (points/sec per dataset,
//! measured over one full serial pass) so per-point latency is tracked
//! machine-readably across PRs alongside the batch-ingest numbers.

use std::path::Path;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use edm_bench::catalog::{self, DatasetId};
use edm_bench::report::merge_bench_json;
use edm_common::metric::Euclidean;
use edm_core::EdmStream;

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("edmstream_insert");
    group.sample_size(10);
    for id in [DatasetId::Kdd, DatasetId::CoverType, DatasetId::Pamap2] {
        let ds = catalog::load(id, 0.01, 1_000.0);
        group.bench_function(ds.id.name(), |b| {
            b.iter_batched(
                || {
                    // Warm engine: initialized and past the init buffer.
                    let mut e = EdmStream::new(ds.edm.clone(), Euclidean);
                    for p in ds.stream.iter().take(2_000) {
                        e.insert(&p.payload, p.ts);
                    }
                    e
                },
                |mut e| {
                    for p in ds.stream.iter().skip(2_000) {
                        e.insert(&p.payload, p.ts);
                    }
                    e
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

/// One timed serial pass per dataset, written into `BENCH_ingest.json`.
fn emit_json(c: &mut Criterion) {
    let _ = c; // runs as a criterion group member; needs no bencher
    let mut entries: Vec<String> = Vec::new();
    for id in [DatasetId::Kdd, DatasetId::CoverType, DatasetId::Pamap2] {
        let ds = catalog::load(id, 0.01, 1_000.0);
        let mut e = EdmStream::new(ds.edm.clone(), Euclidean);
        for p in ds.stream.iter().take(2_000) {
            e.insert(&p.payload, p.ts);
        }
        let start = Instant::now();
        let mut n = 0u64;
        for p in ds.stream.iter().skip(2_000) {
            e.insert(&p.payload, p.ts);
            n += 1;
        }
        let pps = n as f64 / start.elapsed().as_secs_f64();
        entries.push(format!(
            "{{\"dataset\": \"{}\", \"points_per_sec\": {:.0}}}",
            ds.id.name(),
            pps
        ));
    }
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_ingest.json");
    merge_bench_json(&path, "insert_latency", &format!("[{}]", entries.join(", ")))
        .expect("write bench json");
    println!("[written {}]", path.display());
}

criterion_group!(benches, bench_insert, emit_json);
criterion_main!(benches);
