//! Maintenance layer: dependency updates, decay, recycling (paper §4.2–4.4).
//!
//! The only layer that *deletes* cells. Three responsibilities:
//!
//! * **Dependency maintenance** (§4.2) — when a cell absorbs a point it
//!   rises in the density order; Theorems 1 and 2 prune the cells whose
//!   dependency could change, and the neighbor index answers the
//!   nearest-denser search when the riser overtook its own dependency.
//! * **Decay sweep** (§4.3) — on the maintenance cadence, top-most active
//!   cells below the threshold move (with their whole subtree — children
//!   are always sparser) back to the outlier reservoir.
//! * **Recycling** (§4.4, Theorem 3) — reservoir cells idle past ΔT_del
//!   can never become active again and are deleted. Expired cells are
//!   found through the [`IdleQueue`], an idle-ordered priority queue with
//!   lazy invalidation: each pop is an expired (or stale) entry, so the
//!   cost per sweep is O(recycled + stale), **never** O(total cells) —
//!   the full-slab walk this replaces was the last linear scan in the
//!   engine's steady state.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::AtomicBool;

use edm_common::metric::Metric;
use edm_common::point::GridCoords;
use edm_common::time::Timestamp;

use crate::cell::CellId;
use crate::evolution::{AdjustKind, ClusterId, EventKind, GroupInput};
use crate::index::NeighborIndex;
use crate::tree;

use super::pool::SliceTasks;
use super::{denser_scalar, EdmStream};

/// Candidate-scan chunks handed out per participating thread (before
/// stealing) when the Theorem-1/2 pass goes parallel.
const CAND_TASKS_PER_PARTICIPANT: usize = 4;

/// Minimum candidate-chunk length — the per-candidate work (two scratch
/// reads, maybe a decay evaluation) is tiny, so below this the dispatch
/// overhead would dominate.
const MIN_CAND_CHUNK: usize = 64;

/// One pool task's share of the parallel dependency-candidate pass:
/// surviving candidates (in registry order) plus the filter counters the
/// chunk would have bumped, summed into [`crate::EngineStats`] by the
/// main thread in chunk order so the totals match the serial loop
/// exactly.
#[derive(Debug, Default)]
struct CandChunk {
    out: Vec<CellId>,
    examined: u64,
    tri: u64,
    dens: u64,
}

/// Reusable buffers for the parallel dependency-candidate pass (one
/// result chunk per pool task, plus the chunk-claim flags); lives on the
/// engine so steady-state passes allocate nothing.
#[derive(Debug, Default)]
pub(super) struct DepScratch {
    chunks: Vec<CandChunk>,
    claims: Vec<AtomicBool>,
}

/// An idle-queue entry: the absorption time a cell was filed under.
/// Ordered oldest-first (via `Reverse` in the heap) with id tie-breaks so
/// queue behavior is deterministic.
#[derive(Debug, Clone, Copy, PartialEq)]
struct IdleKey {
    last_absorb: Timestamp,
    id: CellId,
}

impl Eq for IdleKey {}

impl Ord for IdleKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.last_absorb.total_cmp(&other.last_absorb).then(self.id.cmp(&other.id))
    }
}

impl PartialOrd for IdleKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Inactive cells keyed by last absorption time, oldest first.
///
/// Writers push a fresh entry whenever a cell (re)enters or re-touches
/// the reservoir: birth, absorb-while-inactive, demotion from the tree.
/// Entries are never searched or deleted in place — a cell that was
/// re-absorbed or activated leaves its old entries behind as *stale*, and
/// the reader drops them on pop by comparing the entry's timestamp with
/// the cell's current `last_absorb` (a recycled slot's reused id can
/// never collide: the new cell's absorption time is necessarily later
/// than any entry that outlived the old one, see
/// [`EdmStream::check_invariants`]'s coverage check).
///
/// Lazy invalidation trades heap size for O(1) updates; [`IdleQueue::compact`]
/// bounds the trade by rebuilding from live entries once stale ones
/// dominate, at cost amortized against the pushes that created them.
#[derive(Debug, Clone, Default)]
pub(super) struct IdleQueue {
    heap: BinaryHeap<Reverse<IdleKey>>,
}

impl IdleQueue {
    /// Files `id` as idle since `last_absorb` (superseding — lazily — any
    /// earlier entry for the same cell).
    pub(super) fn push(&mut self, id: CellId, last_absorb: Timestamp) {
        self.heap.push(Reverse(IdleKey { last_absorb, id }));
    }

    /// Oldest entry, if any (stale or not — the caller validates).
    fn peek(&self) -> Option<IdleKey> {
        self.heap.peek().map(|Reverse(k)| *k)
    }

    /// Removes and returns the oldest entry.
    fn pop(&mut self) -> Option<IdleKey> {
        self.heap.pop().map(|Reverse(k)| k)
    }

    /// Entries currently queued (live + stale).
    pub(super) fn len(&self) -> usize {
        self.heap.len()
    }

    /// Iterates all queued entries in unspecified order (invariant checks).
    pub(super) fn iter(&self) -> impl Iterator<Item = (CellId, Timestamp)> + '_ {
        self.heap.iter().map(|Reverse(k)| (k.id, k.last_absorb))
    }

    /// Drops every stale entry, keeping only those `is_live` vouches for.
    /// O(len); callers trigger it only after the queue at least doubled
    /// past the live population, so the cost amortizes to O(1) per push.
    fn compact(&mut self, is_live: impl Fn(&IdleKey) -> bool) {
        let entries = std::mem::take(&mut self.heap).into_vec();
        self.heap = entries.into_iter().filter(|Reverse(k)| is_live(k)).collect();
    }
}

impl<P: Clone + GridCoords + Send + Sync, M: Metric<P>> EdmStream<P, M> {
    // ----- dependency maintenance (paper §4.2) -----

    /// Handles the density rise of `cprime` (which just absorbed `p`) from
    /// `before` to `after` at time `t`. When `freshly_activated`, `cprime`
    /// just entered the tree and needs its own dependency computed
    /// unconditionally.
    pub(super) fn dependency_maintenance(
        &mut self,
        p: &P,
        cprime: CellId,
        before: f64,
        after: f64,
        t: Timestamp,
        freshly_activated: bool,
    ) {
        let started = std::time::Instant::now();
        let filters = self.cfg.filters;
        let p_dist_cprime = self.scratch.get(cprime.0 as usize).unwrap_or(0.0);

        // Apex maintenance: only the rising cell can displace the current
        // maximum (uniform decay keeps every other pair's order fixed).
        let displaced = match self.apex {
            Some(apex) if apex != cprime => {
                let rho_apex = self.slab.get(apex).rho_at(t, self.decay());
                denser_scalar(after, cprime, rho_apex, apex)
            }
            Some(_) => false, // cprime already is the apex
            None => true,
        };
        if displaced {
            self.apex = Some(cprime);
        }

        // Candidate pass: cells whose dependency may now be `cprime`.
        // Only tree members can depend on anything, so this walks the
        // active registry, not the reservoir-dominated slab. The pass is
        // read-only over (slab, scratch, index), so on a parallel engine
        // with a large enough registry it fans out across the worker pool
        // — chunk results merge in registry order, so candidates and
        // counters come out identical to this serial loop.
        let mut candidates: Vec<CellId> = Vec::new();
        if self.cfg.ingest_threads > 1
            && self.active_ids.len() >= self.cfg.parallel_candidates_min.max(1)
        {
            self.parallel_candidates(p, cprime, p_dist_cprime, before, after, t, &mut candidates);
        } else {
            for &id in &self.active_ids {
                let cell = self.slab.get(id);
                if id == cprime {
                    continue;
                }
                self.stats.dep_candidates += 1;
                // Theorem 2 first: |p,s_c| and |p,s_c'| are already in scratch
                // when the assignment probe reached `c`, so the common case
                // costs two reads — cheaper than the density comparison, which
                // needs a decay evaluation per cell. Cells the index pruned
                // fall back to its distance lower bound, which can only prune
                // a subset of what the exact check would (still Theorem 2,
                // one-sided), so filtering stays exact either way.
                if filters.triangle {
                    let pruned = match self.scratch.get(id.0 as usize) {
                        Some(p_dist_c) => (p_dist_c - p_dist_cprime).abs() > cell.delta,
                        None => {
                            self.index.lower_bound_prunes(p, &cell.seed, p_dist_cprime, cell.delta)
                        }
                    };
                    if pruned {
                        self.stats.filtered_triangle += 1;
                        continue;
                    }
                }
                let rho_c = cell.rho_at(t, self.decay());
                // `cprime` must now outrank `c` for any update to be possible;
                // this is not a filter but the update rule itself.
                let now_denser_c = denser_scalar(rho_c, id, after, cprime);
                if filters.density {
                    // Theorem 1: only cells `cprime` overtook need checking.
                    let was_denser_c = denser_scalar(rho_c, id, before, cprime);
                    if !was_denser_c || now_denser_c {
                        self.stats.filtered_density += 1;
                        continue;
                    }
                } else if now_denser_c {
                    continue;
                }
                candidates.push(id);
            }
        }
        for c in candidates {
            // The distance only matters when it beats δ_c; past that bound
            // the bounded kernel's early exit is free (any value > δ_c is
            // discarded, and within the bound it is exact).
            let delta = self.slab.get(c).delta;
            let d = self.metric.dist_upper_bounded(
                &self.slab.get(c).seed,
                &self.slab.get(cprime).seed,
                delta,
            );
            if d < self.slab.get(c).delta {
                tree::set_dep(&mut self.slab, c, cprime, d);
                self.stats.dep_updates += 1;
                self.structure_dirty = true;
            }
        }

        // Did `cprime` overtake its own dependency? Then its δ must be
        // recomputed against the (shrunken) set of denser cells.
        let needs_recompute = if freshly_activated {
            true
        } else {
            match self.slab.get(cprime).dep {
                Some(dep) => {
                    let rho_dep = self.slab.get(dep).rho_at(t, self.decay());
                    !denser_scalar(rho_dep, dep, after, cprime)
                }
                None => false, // already the root; absorbing keeps it there
            }
        };
        if needs_recompute {
            self.stats.dep_recomputes += 1;
            self.recompute_dep(cprime, after, t);
            self.structure_dirty = true;
        }
        self.stats.dep_update_nanos += started.elapsed().as_nanos() as u64;
    }

    /// The Theorem-1/2 candidate pass, fanned out across the worker pool:
    /// the active registry is chunked, each pool task filters its chunk
    /// read-only into a [`CandChunk`], and the main thread folds chunks
    /// back in registry order — surviving candidates and filter counters
    /// come out exactly as the serial loop in
    /// [`EdmStream::dependency_maintenance`] would produce them. Gated by
    /// the caller on `ingest_threads > 1` and
    /// [`crate::EdmConfig::parallel_candidates_min`], because per-cell
    /// work here is two scratch reads and at most one decay evaluation —
    /// only large registries pay back a pool round.
    #[allow(clippy::too_many_arguments)]
    fn parallel_candidates(
        &mut self,
        p: &P,
        cprime: CellId,
        p_dist_cprime: f64,
        before: f64,
        after: f64,
        t: Timestamp,
        candidates: &mut Vec<CellId>,
    ) {
        let filters = self.cfg.filters;
        let decay = self.cfg.decay;
        let participants = self.cfg.ingest_threads;
        let ids: &[CellId] = &self.active_ids;
        let chunk =
            ids.len().div_ceil(participants * CAND_TASKS_PER_PARTICIPANT).max(MIN_CAND_CHUNK);
        let n_tasks = ids.len().div_ceil(chunk);
        if self.dep_scratch.chunks.len() < n_tasks {
            self.dep_scratch.chunks.resize_with(n_tasks, CandChunk::default);
        }
        let slab = &self.slab;
        let scratch = &self.scratch;
        let index = &self.index;
        let tasks = SliceTasks::new(
            &mut self.dep_scratch.chunks[..n_tasks],
            1,
            &mut self.dep_scratch.claims,
        );
        self.workers.run(n_tasks, &|i| {
            let slot = &mut tasks.take(i)[0];
            slot.out.clear();
            slot.examined = 0;
            slot.tri = 0;
            slot.dens = 0;
            let start = i * chunk;
            for &id in &ids[start..(start + chunk).min(ids.len())] {
                if id == cprime {
                    continue;
                }
                slot.examined += 1;
                let cell = slab.get(id);
                if filters.triangle {
                    let pruned = match scratch.get(id.0 as usize) {
                        Some(p_dist_c) => (p_dist_c - p_dist_cprime).abs() > cell.delta,
                        None => index.lower_bound_prunes(p, &cell.seed, p_dist_cprime, cell.delta),
                    };
                    if pruned {
                        slot.tri += 1;
                        continue;
                    }
                }
                let rho_c = cell.rho_at(t, &decay);
                let now_denser_c = denser_scalar(rho_c, id, after, cprime);
                if filters.density {
                    let was_denser_c = denser_scalar(rho_c, id, before, cprime);
                    if !was_denser_c || now_denser_c {
                        slot.dens += 1;
                        continue;
                    }
                } else if now_denser_c {
                    continue;
                }
                slot.out.push(id);
            }
        });
        for slot in &mut self.dep_scratch.chunks[..n_tasks] {
            self.stats.dep_candidates += slot.examined;
            self.stats.filtered_triangle += slot.tri;
            self.stats.filtered_density += slot.dens;
            candidates.append(&mut slot.out);
        }
    }

    /// Recomputes `cell`'s dependency: the nearest denser active cell,
    /// found through the neighbor index (expanding-shell search under the
    /// grid, full scan under the linear fallback). When `cell` is the
    /// apex there is nothing denser to find — it becomes the root without
    /// any search, which is exactly the case where a search could only
    /// terminate by exhausting the index.
    fn recompute_dep(&mut self, cell: CellId, rho_cell: f64, t: Timestamp) {
        if self.apex == Some(cell) {
            tree::detach(&mut self.slab, cell);
            return;
        }
        let decay = self.cfg.decay;
        let best = {
            let q = &self.slab.get(cell).seed;
            self.index.nearest_matching(q, &self.slab, &self.metric, &mut |id, other| {
                id != cell
                    && other.active
                    && denser_scalar(other.rho_at(t, &decay), id, rho_cell, cell)
            })
        };
        tree::detach(&mut self.slab, cell);
        if let Some((dep, d)) = best {
            tree::attach(&mut self.slab, cell, dep, d);
        }
    }

    // ----- decay sweep and recycling (paper §4.3–4.4) -----

    pub(super) fn maintenance(&mut self, t: Timestamp) {
        // Cluster-cell decay: find top-most active cells below the
        // threshold; their subtrees (all sparser) decay with them.
        let thr = self.threshold_at(t);
        let mut decayed_tops: Vec<CellId> = Vec::new();
        for &id in &self.active_ids {
            let cell = self.slab.get(id);
            if cell.rho_at(t, self.decay()) >= thr {
                continue;
            }
            let parent_above = match cell.dep {
                Some(p) => self.slab.get(p).rho_at(t, self.decay()) >= thr,
                None => true,
            };
            if parent_above {
                decayed_tops.push(id);
            }
        }
        if !decayed_tops.is_empty() {
            let mut removed: Vec<CellId> = Vec::new();
            // BTreeMap, not HashMap: the loop below emits one Adjust event
            // per cluster, and event order must be identical across engine
            // instances (the equivalence suites compare event streams) —
            // a hashed iteration order is randomized per instance.
            let mut by_cluster: std::collections::BTreeMap<Option<ClusterId>, u32> =
                std::collections::BTreeMap::new();
            for top in decayed_tops {
                tree::detach(&mut self.slab, top);
                removed.clear();
                tree::collect_subtree(&self.slab, top, &mut removed);
                for &id in removed.iter() {
                    let cell = self.slab.get_mut(id);
                    cell.active = false;
                    cell.dep = None;
                    cell.delta = f64::INFINITY;
                    cell.children.clear();
                    *by_cluster.entry(cell.cluster.take()).or_insert(0) += 1;
                    self.stats.deactivations += 1;
                    // Back in the reservoir: idle clock starts from the
                    // cell's last absorption.
                    let filed_at = cell.last_absorb;
                    self.idle.push(id, filed_at);
                }
            }
            // Compact the registry once per sweep (deactivations are
            // batched and rare relative to inserts).
            let slab = &self.slab;
            self.active_ids.retain(|&id| slab.get(id).active);
            if self.apex.is_some_and(|a| !self.slab.get(a).active) {
                self.apex = self.densest_active(t);
            }
            if self.cfg.track_evolution {
                for (cluster, cells) in by_cluster {
                    if let Some(cluster) = cluster {
                        self.log.push(
                            t,
                            EventKind::Adjust { kind: AdjustKind::BecameOutliers, cluster, cells },
                        );
                        self.stats.events += 1;
                    }
                }
            }
            self.structure_dirty = true;
        }
        // Memory recycling: inactive cells idle for ΔT_del are deleted
        // (Theorem 3: they can never become active again in time). The
        // idle queue hands over exactly the expired candidates — popping
        // stops at the first unexpired entry, so steady-state cost is
        // O(recycled + stale), independent of slab size.
        let mut removed_any = false;
        while let Some(entry) = self.idle.peek() {
            if t - entry.last_absorb <= self.dt_del {
                break; // oldest entry not yet expired — nothing else is
            }
            self.idle.pop();
            if !self.slab.contains(entry.id) {
                continue; // stale: the cell was already recycled
            }
            let cell = self.slab.get(entry.id);
            if cell.active || cell.last_absorb != entry.last_absorb {
                continue; // stale: superseded by activation or re-absorb
            }
            let cell = self.slab.remove(entry.id);
            self.index.on_remove(entry.id, &cell.seed, &self.slab, &self.metric);
            self.stats.recycled += 1;
            removed_any = true;
        }
        // Bound the stale backlog: once the queue outgrows twice the
        // reservoir, at least half its entries are stale — rebuild from
        // the live ones (amortized O(1) per push, and no slab walk).
        if self.idle.len() > 64 && self.idle.len() > 2 * self.reservoir_len() {
            let slab = &self.slab;
            self.idle.compact(|k| {
                slab.contains(k.id) && {
                    let c = slab.get(k.id);
                    !c.active && c.last_absorb == k.last_absorb
                }
            });
        }
        // Index self-maintenance: occupancy-band auto-tuning, cover-tree
        // radius re-tightening, and `Auto` backend re-selection (all
        // counted so rebuild churn is observable — and so the parallel
        // commit loop invalidates cached probes whenever the index's
        // pruning geometry changed under them). The cumulative probe
        // counters feed the auto-selector's prune-rate evidence.
        self.index.note_probe_stats(self.stats.index_probed, self.stats.index_pruned);
        let index_changes = self.index.maintain(&self.slab, &self.metric);
        self.stats.grid_rebuilds += index_changes;
        self.stats.index_switches = self.index.auto_switches();
        if removed_any || index_changes > 0 {
            self.refresh_shard_stats();
        }
    }

    // ----- evolution bookkeeping (paper §3.3) -----

    pub(super) fn run_diff(&mut self, t: Timestamp) {
        self.structure_dirty = false;
        if !self.cfg.track_evolution {
            return;
        }
        let tau = self.tau_ctl.tau();
        let mut groups: edm_common::hash::FxHashMap<CellId, GroupInput> =
            edm_common::hash::fx_map();
        for id in self.sorted_active_ids() {
            let cell = self.slab.get(id);
            let root = tree::strong_root(&self.slab, id, tau);
            groups
                .entry(root)
                .or_insert_with(|| GroupInput { root, members: Vec::new() })
                .members
                .push((id, cell.cluster));
        }
        let mut group_vec: Vec<GroupInput> = groups.into_values().collect();
        group_vec.sort_by_key(|g| g.root);
        let before = self.log.total();
        let assignments = self.registry.diff(t, &group_vec, &mut self.log);
        self.stats.events += self.log.total() - before;
        for (cell, cid) in assignments {
            self.slab.get_mut(cell).cluster = Some(cid);
        }
        // Every event-recording site funnels through here (maintenance's
        // adjust events mark the structure dirty, so a diff — and this
        // sync — always follows), which keeps the lineage tracker's
        // cursor ahead of the log's eviction point unless one diff alone
        // overflows `event_capacity`.
        self.tracker.sync(&self.log);
    }

    /// The densest active cell at `t` by full scan of the registry
    /// (apex re-election after the incumbent decays; rare).
    pub(super) fn densest_active(&self, t: Timestamp) -> Option<CellId> {
        let mut best: Option<(f64, CellId)> = None;
        for &id in &self.active_ids {
            let rho = self.slab.get(id).rho_at(t, self.decay());
            if best.is_none_or(|(brho, bid)| denser_scalar(rho, id, brho, bid)) {
                best = Some((rho, id));
            }
        }
        best.map(|(_, id)| id)
    }

    /// Mirrors the index's per-shard population into the stats counters;
    /// called wherever the population changes (births, recycling, init).
    /// Writes in place — no allocation after the first refresh.
    pub(super) fn refresh_shard_stats(&mut self) {
        self.index.shard_occupancy_into(&mut self.stats.shard_cells);
    }
}
