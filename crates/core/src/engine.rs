//! The EDMStream engine (paper §4).
//!
//! Processing pipeline per stream point (Fig 5):
//!
//! 1. **assign** — nearest cell seed within `r` absorbs the point, else a
//!    new inactive cell is born into the outlier reservoir; the seed
//!    lookup goes through the configured [`crate::index::NeighborIndex`],
//!    which keeps it sub-linear in cell count for coordinate payloads;
//! 2. **dependency update** — the absorbing cell rose in the density
//!    order; only cells it *overtook* can change dependency (Theorem 1),
//!    and of those the triangle inequality prunes most (Theorem 2);
//! 3. **emergence** — a reservoir cell crossing the active threshold is
//!    inserted into the DP-Tree;
//! 4. **decay** — active cells falling below the threshold move (with
//!    their whole subtree) to the reservoir; outdated reservoir cells are
//!    recycled after ΔT_del (Theorem 3).
//!
//! Structural changes mark the tree dirty; the evolution registry then
//! diffs the MSDSubTree partition and records emerge / disappear / split /
//! merge / adjust events (§3.3). The adaptive-τ controller re-optimizes
//! the separation threshold on a configurable cadence (§5).

use edm_common::decay::DecayModel;
use edm_common::hash::fx_map;
use edm_common::metric::Metric;
use edm_common::point::GridCoords;
use edm_common::time::Timestamp;

use crate::cell::{Cell, CellId};
use crate::config::EdmConfig;
use crate::error::EdmError;
use crate::evolution::{
    AdjustKind, ClusterId, ClusterRegistry, Event, EventCursor, EventKind, EvolutionLog, GroupInput,
};
use crate::filters::EngineStats;
use crate::index::{CellIndex, NeighborIndex};
use crate::slab::CellSlab;
use crate::snapshot::{ClusterInfo, ClusterSnapshot};
use crate::tau::TauController;
use crate::tree;

/// Per-point distance cache over slab slots with O(1) reset.
///
/// The assignment scan records every |p, s_c| it actually computes; the
/// Theorem 2 triangle filter then reads them back for free. Entries are
/// validated by an epoch stamp instead of clearing the table each point —
/// a grid-indexed scan probes only a handful of cells, and wiping the
/// whole table would itself be the linear cost the index removes.
#[derive(Debug, Clone, Default)]
struct ScratchDistances {
    dist: Vec<f64>,
    stamp: Vec<u64>,
    epoch: u64,
}

impl ScratchDistances {
    /// Starts a new point's scan: grows to `slots` and invalidates every
    /// previous entry by bumping the epoch.
    fn begin(&mut self, slots: usize) {
        self.dist.resize(slots, f64::INFINITY);
        self.stamp.resize(slots, 0);
        self.epoch += 1;
    }

    /// Records the exact distance for a slot.
    #[inline]
    fn set(&mut self, slot: usize, d: f64) {
        self.dist[slot] = d;
        self.stamp[slot] = self.epoch;
    }

    /// The exact distance for a slot, if this point's scan computed it.
    #[inline]
    fn get(&self, slot: usize) -> Option<f64> {
        (self.stamp.get(slot) == Some(&self.epoch)).then(|| self.dist[slot])
    }
}

/// Engine phase: caching the initialization buffer, or running.
enum Phase<P> {
    Caching(Vec<(P, Timestamp)>),
    Running,
}

/// The EDMStream engine, generic over payload type and metric.
pub struct EdmStream<P, M> {
    cfg: EdmConfig,
    metric: M,
    slab: CellSlab<P>,
    phase: Phase<P>,
    tau_ctl: TauController,
    registry: ClusterRegistry,
    log: EvolutionLog,
    stats: EngineStats,
    /// Neighbor index over cell seeds; answers assignment and
    /// nearest-denser queries without scanning the whole slab.
    index: CellIndex,
    /// |p, s_c| per slab slot, filled by the assignment scan of the current
    /// point (feeds the triangle filter for free, paper §4.2).
    scratch: ScratchDistances,
    active_thr: f64,
    dt_del: f64,
    start: Option<Timestamp>,
    now: Timestamp,
    /// The DP-Tree population: ids of all currently active cells. Kept so
    /// the per-absorb dependency candidate pass walks only the tree, not
    /// the (much larger) reservoir-dominated slab.
    active_ids: Vec<CellId>,
    /// The densest active cell (the DP-Tree root, by the single-root
    /// invariant). Densities decay uniformly, so only an absorbing or
    /// freshly activated cell can displace it — an O(1) comparison per
    /// absorb. Lets `recompute_dep` skip the nearest-denser search
    /// outright when the rising cell *is* the new maximum, the one case
    /// where that search would otherwise exhaust the whole index proving
    /// a negative.
    apex: Option<CellId>,
    reservoir_peak: usize,
    structure_dirty: bool,
}

impl<P: Clone + GridCoords, M: Metric<P>> EdmStream<P, M> {
    /// Creates an engine; the first `cfg.init_points` inserts are buffered
    /// for the initialization step.
    ///
    /// Never fails: an [`EdmConfig`] can only be obtained from
    /// [`EdmConfig::builder`], whose `build()` already validated it.
    /// Configs smuggled in from outside the builder (deserialization,
    /// FFI) are the caller's responsibility — gate them through
    /// [`EdmConfig::check`]; this constructor only debug-asserts.
    pub fn new(cfg: EdmConfig, metric: M) -> Self {
        debug_assert!(cfg.check().is_ok(), "config bypassed builder validation: {:?}", cfg.check());
        let active_thr = cfg.active_threshold();
        let dt_del = cfg.delta_t_del();
        // Grid pruning is only sound for metrics that vouch for the
        // axis-domination bound ([`Metric::dominates_coordinate_axes`]);
        // anything else gets the exact linear scan, so a custom metric
        // can never make the index silently drop a true neighbor.
        let index_kind = if metric.dominates_coordinate_axes() {
            cfg.neighbor_index
        } else {
            crate::index::NeighborIndexKind::LinearScan
        };
        EdmStream {
            tau_ctl: TauController::new(cfg.tau_mode),
            phase: Phase::Caching(Vec::with_capacity(cfg.init_points)),
            metric,
            slab: CellSlab::new(),
            registry: ClusterRegistry::new(),
            log: EvolutionLog::with_capacity(cfg.event_capacity),
            stats: EngineStats::default(),
            index: CellIndex::from_config(index_kind, cfg.r),
            scratch: ScratchDistances::default(),
            active_thr,
            dt_del,
            start: None,
            now: 0.0,
            active_ids: Vec::new(),
            apex: None,
            reservoir_peak: 0,
            structure_dirty: false,
            cfg,
        }
    }

    /// Feeds one stream point — the infallible hot path. Out-of-order
    /// timestamps are a debug assertion here; ingest from untrusted
    /// transports through [`EdmStream::try_insert`] instead.
    pub fn insert(&mut self, p: &P, t: Timestamp) {
        debug_assert!(t >= self.now - 1e-9, "stream time must not go backwards");
        self.start.get_or_insert(t);
        self.now = self.now.max(t);
        self.stats.points += 1;
        match &mut self.phase {
            Phase::Caching(buf) => {
                buf.push((p.clone(), t));
                if buf.len() >= self.cfg.init_points {
                    self.initialize();
                }
            }
            Phase::Running => self.process(p, t),
        }
    }

    /// Feeds one stream point, rejecting timestamps behind the stream
    /// clock with [`EdmError::TimeRegression`] instead of asserting.
    pub fn try_insert(&mut self, p: &P, t: Timestamp) -> Result<(), EdmError> {
        if t < self.now - 1e-9 {
            return Err(EdmError::TimeRegression { now: self.now, t });
        }
        self.insert(p, t);
        Ok(())
    }

    /// Feeds a batch of stream points in order. Observationally equivalent
    /// to inserting each point individually — batching exists so callers
    /// (and the [`edm_data::clusterer::StreamClusterer`] harness) drive
    /// one uniform interface; per-point maintenance cadences still fire at
    /// the same points.
    pub fn insert_batch(&mut self, batch: &[(P, Timestamp)]) {
        for (p, t) in batch {
            self.insert(p, *t);
        }
    }

    /// Batch variant of [`EdmStream::try_insert`]: stops at the first
    /// out-of-order timestamp, reporting its index alongside the error;
    /// points before it are already ingested.
    pub fn try_insert_batch(&mut self, batch: &[(P, Timestamp)]) -> Result<(), (usize, EdmError)> {
        for (i, (p, t)) in batch.iter().enumerate() {
            self.try_insert(p, *t).map_err(|e| (i, e))?;
        }
        Ok(())
    }

    /// Forces initialization with whatever is buffered (no-op when already
    /// running). Needed for streams shorter than `init_points` and before
    /// early queries.
    pub fn force_init(&mut self) {
        if matches!(self.phase, Phase::Caching(_)) {
            self.initialize();
        }
    }

    /// True once the initialization step has run.
    pub fn is_initialized(&self) -> bool {
        matches!(self.phase, Phase::Running)
    }

    // ----- initialization (paper §4.1 "Initialization") -----

    fn initialize(&mut self) {
        let buf = match std::mem::replace(&mut self.phase, Phase::Running) {
            Phase::Caching(buf) => buf,
            Phase::Running => return,
        };
        let t = self.now;
        // Build cells by sequential nearest-seed assignment.
        for (p, tp) in buf {
            match self.nearest_cell(&p) {
                Some((cid, _)) => {
                    let decay = self.cfg.decay;
                    self.slab.get_mut(cid).absorb(tp, &decay);
                }
                None => {
                    let id = self.slab.insert(Cell::new(p, tp));
                    self.index.on_insert(id, &self.slab.get(id).seed);
                }
            }
        }
        // Activate dense cells and wire the DP-Tree among them, scanning in
        // density order (the O(k²) batch pass the paper performs once).
        let mut order: Vec<(f64, CellId)> =
            self.slab.iter().map(|(id, c)| (c.rho_at(t, self.decay()), id)).collect();
        order.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("density NaN").then(a.1.cmp(&b.1)));
        let thr = self.threshold_at(t);
        let mut placed: Vec<CellId> = Vec::new();
        for &(rho, id) in &order {
            if rho < thr {
                break; // sorted: everything after is inactive too
            }
            self.slab.get_mut(id).active = true;
            self.active_ids.push(id);
            let mut best: Option<(f64, CellId)> = None;
            for &prev in &placed {
                let d = self.metric.dist(&self.slab.get(id).seed, &self.slab.get(prev).seed);
                if best.is_none_or(|(bd, bid)| d < bd || (d == bd && prev < bid)) {
                    best = Some((d, prev));
                }
            }
            if let Some((d, dep)) = best {
                tree::attach(&mut self.slab, id, dep, d);
            }
            placed.push(id);
        }
        // The density-ordered pass placed the densest cell first.
        self.apex = placed.first().copied();
        // τ initialization: the "user" picks τ₀ from the decision graph
        // (largest-gap heuristic unless configured explicitly).
        let mut deltas = self.active_deltas_sorted();
        let tau0 = self
            .cfg
            .tau0
            .unwrap_or_else(|| suggest_tau_from_deltas(&deltas).unwrap_or(4.0 * self.cfg.r));
        self.tau_ctl.initialize(&deltas, tau0);
        deltas.clear();
        self.structure_dirty = true;
        self.run_diff(t);
        self.update_reservoir_peak();
    }

    // ----- per-point processing (paper §4.1 "Key Operations") -----

    fn process(&mut self, p: &P, t: Timestamp) {
        let nearest = self.scan_distances(p);
        match nearest {
            Some((cid, _)) => {
                self.stats.absorbed += 1;
                let decay = self.cfg.decay;
                let (before, after) = self.slab.get_mut(cid).absorb(t, &decay);
                let was_active = self.slab.get(cid).active;
                if was_active {
                    self.dependency_maintenance(p, cid, before, after, t, false);
                } else if after >= self.threshold_at(t) {
                    // Cluster-cell emergence (DP-Tree insertion, §4.3).
                    self.slab.get_mut(cid).active = true;
                    self.active_ids.push(cid);
                    self.stats.activations += 1;
                    self.dependency_maintenance(p, cid, before, after, t, true);
                    self.structure_dirty = true;
                }
            }
            None => {
                // New cluster-cell, cached in the reservoir (low density).
                self.stats.new_cells += 1;
                let id = self.slab.insert(Cell::new(p.clone(), t));
                self.index.on_insert(id, &self.slab.get(id).seed);
            }
        }
        if self.stats.points.is_multiple_of(self.cfg.maintenance_every) {
            self.maintenance(t);
        }
        if self.stats.points.is_multiple_of(self.cfg.tau_every) {
            let deltas = self.active_deltas_sorted();
            if self.tau_ctl.update(&deltas) {
                self.structure_dirty = true;
            }
        }
        if self.structure_dirty {
            self.run_diff(t);
        }
        self.update_reservoir_peak();
    }

    /// Resolves the assignment query through the neighbor index: the
    /// nearest cell within `r`, stamping every distance the index actually
    /// computed into the scratch table (the triangle filter's free input)
    /// and accounting probed vs. pruned cells.
    fn scan_distances(&mut self, p: &P) -> Option<(CellId, f64)> {
        self.scratch.begin(self.slab.capacity_slots());
        let scratch = &mut self.scratch;
        let mut probed = 0u64;
        let best =
            self.index.nearest_within(p, self.cfg.r, &self.slab, &self.metric, &mut |id, d| {
                probed += 1;
                scratch.set(id.0 as usize, d);
            });
        self.stats.index_probed += probed;
        self.stats.index_pruned += self.slab.len() as u64 - probed;
        best
    }

    /// Nearest cell within `r` without touching scratch (initialization
    /// and query paths).
    fn nearest_cell(&self, p: &P) -> Option<(CellId, f64)> {
        self.index.nearest_within(p, self.cfg.r, &self.slab, &self.metric, &mut |_, _| {})
    }

    // ----- dependency maintenance (paper §4.2) -----

    /// Handles the density rise of `cprime` (which just absorbed `p`) from
    /// `before` to `after` at time `t`. When `freshly_activated`, `cprime`
    /// just entered the tree and needs its own dependency computed
    /// unconditionally.
    fn dependency_maintenance(
        &mut self,
        p: &P,
        cprime: CellId,
        before: f64,
        after: f64,
        t: Timestamp,
        freshly_activated: bool,
    ) {
        let started = std::time::Instant::now();
        let filters = self.cfg.filters;
        let p_dist_cprime = self.scratch.get(cprime.0 as usize).unwrap_or(0.0);

        // Apex maintenance: only the rising cell can displace the current
        // maximum (uniform decay keeps every other pair's order fixed).
        let displaced = match self.apex {
            Some(apex) if apex != cprime => {
                let rho_apex = self.slab.get(apex).rho_at(t, self.decay());
                denser_scalar(after, cprime, rho_apex, apex)
            }
            Some(_) => false, // cprime already is the apex
            None => true,
        };
        if displaced {
            self.apex = Some(cprime);
        }

        // Candidate pass: cells whose dependency may now be `cprime`.
        // Only tree members can depend on anything, so this walks the
        // active registry, not the reservoir-dominated slab.
        let mut candidates: Vec<CellId> = Vec::new();
        for &id in &self.active_ids {
            let cell = self.slab.get(id);
            if id == cprime {
                continue;
            }
            self.stats.dep_candidates += 1;
            // Theorem 2 first: |p,s_c| and |p,s_c'| are already in scratch
            // when the assignment probe reached `c`, so the common case
            // costs two reads — cheaper than the density comparison, which
            // needs a decay evaluation per cell. Cells the index pruned
            // fall back to its distance lower bound, which can only prune
            // a subset of what the exact check would (still Theorem 2,
            // one-sided), so filtering stays exact either way.
            if filters.triangle {
                let pruned = match self.scratch.get(id.0 as usize) {
                    Some(p_dist_c) => (p_dist_c - p_dist_cprime).abs() > cell.delta,
                    None => {
                        self.index.distance_lower_bound(p, &cell.seed) - p_dist_cprime > cell.delta
                    }
                };
                if pruned {
                    self.stats.filtered_triangle += 1;
                    continue;
                }
            }
            let rho_c = cell.rho_at(t, self.decay());
            // `cprime` must now outrank `c` for any update to be possible;
            // this is not a filter but the update rule itself.
            let now_denser_c = denser_scalar(rho_c, id, after, cprime);
            if filters.density {
                // Theorem 1: only cells `cprime` overtook need checking.
                let was_denser_c = denser_scalar(rho_c, id, before, cprime);
                if !was_denser_c || now_denser_c {
                    self.stats.filtered_density += 1;
                    continue;
                }
            } else if now_denser_c {
                continue;
            }
            candidates.push(id);
        }
        for c in candidates {
            let d = self.metric.dist(&self.slab.get(c).seed, &self.slab.get(cprime).seed);
            if d < self.slab.get(c).delta {
                tree::set_dep(&mut self.slab, c, cprime, d);
                self.stats.dep_updates += 1;
                self.structure_dirty = true;
            }
        }

        // Did `cprime` overtake its own dependency? Then its δ must be
        // recomputed against the (shrunken) set of denser cells.
        let needs_recompute = if freshly_activated {
            true
        } else {
            match self.slab.get(cprime).dep {
                Some(dep) => {
                    let rho_dep = self.slab.get(dep).rho_at(t, self.decay());
                    !denser_scalar(rho_dep, dep, after, cprime)
                }
                None => false, // already the root; absorbing keeps it there
            }
        };
        if needs_recompute {
            self.stats.dep_recomputes += 1;
            self.recompute_dep(cprime, after, t);
            self.structure_dirty = true;
        }
        self.stats.dep_update_nanos += started.elapsed().as_nanos() as u64;
    }

    /// Recomputes `cell`'s dependency: the nearest denser active cell,
    /// found through the neighbor index (expanding-shell search under the
    /// grid, full scan under the linear fallback). When `cell` is the
    /// apex there is nothing denser to find — it becomes the root without
    /// any search, which is exactly the case where a search could only
    /// terminate by exhausting the index.
    fn recompute_dep(&mut self, cell: CellId, rho_cell: f64, t: Timestamp) {
        if self.apex == Some(cell) {
            tree::detach(&mut self.slab, cell);
            return;
        }
        let decay = self.cfg.decay;
        let best = {
            let q = &self.slab.get(cell).seed;
            self.index.nearest_matching(q, &self.slab, &self.metric, &mut |id, other| {
                id != cell
                    && other.active
                    && denser_scalar(other.rho_at(t, &decay), id, rho_cell, cell)
            })
        };
        tree::detach(&mut self.slab, cell);
        if let Some((dep, d)) = best {
            tree::attach(&mut self.slab, cell, dep, d);
        }
    }

    // ----- decay sweep and recycling (paper §4.3–4.4) -----

    fn maintenance(&mut self, t: Timestamp) {
        // Cluster-cell decay: find top-most active cells below the
        // threshold; their subtrees (all sparser) decay with them.
        let thr = self.threshold_at(t);
        let mut decayed_tops: Vec<CellId> = Vec::new();
        for &id in &self.active_ids {
            let cell = self.slab.get(id);
            if cell.rho_at(t, self.decay()) >= thr {
                continue;
            }
            let parent_above = match cell.dep {
                Some(p) => self.slab.get(p).rho_at(t, self.decay()) >= thr,
                None => true,
            };
            if parent_above {
                decayed_tops.push(id);
            }
        }
        if !decayed_tops.is_empty() {
            let mut removed: Vec<CellId> = Vec::new();
            let mut by_cluster: std::collections::HashMap<Option<ClusterId>, u32> =
                std::collections::HashMap::new();
            for top in decayed_tops {
                tree::detach(&mut self.slab, top);
                removed.clear();
                tree::collect_subtree(&self.slab, top, &mut removed);
                for &id in removed.iter() {
                    let cell = self.slab.get_mut(id);
                    cell.active = false;
                    cell.dep = None;
                    cell.delta = f64::INFINITY;
                    cell.children.clear();
                    *by_cluster.entry(cell.cluster.take()).or_insert(0) += 1;
                    self.stats.deactivations += 1;
                }
            }
            // Compact the registry once per sweep (deactivations are
            // batched and rare relative to inserts).
            let slab = &self.slab;
            self.active_ids.retain(|&id| slab.get(id).active);
            if self.apex.is_some_and(|a| !self.slab.get(a).active) {
                self.apex = self.densest_active(t);
            }
            if self.cfg.track_evolution {
                for (cluster, cells) in by_cluster {
                    if let Some(cluster) = cluster {
                        self.log.push(
                            t,
                            EventKind::Adjust { kind: AdjustKind::BecameOutliers, cluster, cells },
                        );
                        self.stats.events += 1;
                    }
                }
            }
            self.structure_dirty = true;
        }
        // Memory recycling: inactive cells idle for ΔT_del are deleted
        // (Theorem 3: they can never become active again in time).
        let outdated: Vec<CellId> = self
            .slab
            .iter()
            .filter(|(_, c)| !c.active && t - c.last_absorb > self.dt_del)
            .map(|(id, _)| id)
            .collect();
        for id in outdated {
            let cell = self.slab.remove(id);
            self.index.on_remove(id, &cell.seed);
            self.stats.recycled += 1;
        }
    }

    // ----- evolution bookkeeping (paper §3.3) -----

    fn run_diff(&mut self, t: Timestamp) {
        self.structure_dirty = false;
        if !self.cfg.track_evolution {
            return;
        }
        let tau = self.tau_ctl.tau();
        let mut groups: edm_common::hash::FxHashMap<CellId, GroupInput> = fx_map();
        for id in self.sorted_active_ids() {
            let cell = self.slab.get(id);
            let root = tree::strong_root(&self.slab, id, tau);
            groups
                .entry(root)
                .or_insert_with(|| GroupInput { root, members: Vec::new() })
                .members
                .push((id, cell.cluster));
        }
        let mut group_vec: Vec<GroupInput> = groups.into_values().collect();
        group_vec.sort_by_key(|g| g.root);
        let before = self.log.total();
        let assignments = self.registry.diff(t, &group_vec, &mut self.log);
        self.stats.events += self.log.total() - before;
        for (cell, cid) in assignments {
            self.slab.get_mut(cell).cluster = Some(cid);
        }
    }

    fn update_reservoir_peak(&mut self) {
        let r = self.reservoir_len();
        if r > self.reservoir_peak {
            self.reservoir_peak = r;
        }
    }

    // ----- queries -----

    /// Decay model in use.
    #[inline]
    fn decay(&self) -> &DecayModel {
        &self.cfg.decay
    }

    /// Active ids in ascending order — the iteration order every
    /// *observable* output (groups, clusters, decision graph) is built
    /// in, so results never depend on activation history. O(a log a) in
    /// the active count only; the reservoir is never touched.
    fn sorted_active_ids(&self) -> Vec<CellId> {
        let mut ids = self.active_ids.clone();
        ids.sort_unstable();
        ids
    }

    /// The densest active cell at `t` by full scan of the registry
    /// (apex re-election after the incumbent decays; rare).
    fn densest_active(&self, t: Timestamp) -> Option<CellId> {
        let mut best: Option<(f64, CellId)> = None;
        for &id in &self.active_ids {
            let rho = self.slab.get(id).rho_at(t, self.decay());
            if best.is_none_or(|(brho, bid)| denser_scalar(rho, id, brho, bid)) {
                best = Some((rho, id));
            }
        }
        best.map(|(_, id)| id)
    }

    /// The activation threshold at time `t` (age-adjusted unless disabled;
    /// floored at 1 so a threshold below a single fresh point never
    /// occurs). See `EdmConfig::age_adjusted_threshold`.
    #[inline]
    fn threshold_at(&self, t: Timestamp) -> f64 {
        if !self.cfg.age_adjusted_threshold {
            return self.active_thr;
        }
        let age = (t - self.start.unwrap_or(t)).max(0.0);
        let ret = self.cfg.decay.retention();
        (self.active_thr * (1.0 - ret.powf(age))).max(1.0)
    }

    /// Engine configuration.
    pub fn config(&self) -> &EdmConfig {
        &self.cfg
    }

    /// Current τ.
    pub fn tau(&self) -> f64 {
        self.tau_ctl.tau()
    }

    /// Learned / configured α.
    pub fn alpha(&self) -> f64 {
        self.tau_ctl.alpha()
    }

    /// Runtime statistics.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Drains the buffered evolution events, oldest first. Subsequent
    /// calls return only events recorded in between — the "consume the
    /// narrative as it happens" pattern of the paper's Figs 7–8.
    pub fn take_events(&mut self) -> Vec<Event> {
        self.log.drain()
    }

    /// Returns the buffered events at or after `cursor`, oldest first,
    /// without consuming them. Pair with [`EdmStream::event_cursor`] for
    /// incremental, non-destructive consumption by multiple readers.
    pub fn events_since(&self, cursor: EventCursor) -> Vec<Event> {
        self.log.events_since(cursor).cloned().collect()
    }

    /// Cursor after the newest recorded event.
    pub fn event_cursor(&self) -> EventCursor {
        self.log.cursor()
    }

    /// Total evolution events ever recorded (monotonic).
    pub fn events_recorded(&self) -> u64 {
        self.log.total()
    }

    /// Events lost to the bounded buffer (evicted or drained) — if a
    /// cursor reader observes this exceeding its cursor, it fell behind
    /// the `event_capacity` it configured.
    pub fn events_evicted(&self) -> u64 {
        self.log.evicted()
    }

    /// Number of active cells (DP-Tree nodes).
    pub fn active_len(&self) -> usize {
        self.active_ids.len()
    }

    /// Number of inactive cells (outlier reservoir population).
    pub fn reservoir_len(&self) -> usize {
        self.slab.len() - self.active_ids.len()
    }

    /// Largest reservoir population observed (Fig 16).
    pub fn reservoir_peak(&self) -> usize {
        self.reservoir_peak
    }

    /// Total live cells.
    pub fn n_cells(&self) -> usize {
        self.slab.len()
    }

    /// Current number of clusters (MSDSubTrees).
    pub fn n_clusters(&self) -> usize {
        let tau = self.tau_ctl.tau();
        self.active_ids
            .iter()
            .filter(|&&id| {
                let c = self.slab.get(id);
                c.dep.is_none() || c.delta > tau
            })
            .count()
    }

    /// Freezes the full clustering state at time `t` into an owned,
    /// read-only [`ClusterSnapshot`]: cluster infos, τ, the decision
    /// graph, population and runtime counters, and an event cursor
    /// aligned with the snapshot instant. Reporting and metrics code
    /// works off the frozen view instead of re-entering the engine.
    ///
    /// ```
    /// use edm_core::{EdmConfig, EdmStream};
    /// use edm_common::metric::Euclidean;
    /// use edm_common::point::DenseVector;
    ///
    /// let cfg = EdmConfig::builder(0.5).rate(100.0).beta(6e-5).init_points(8).build()?;
    /// let mut engine = EdmStream::new(cfg, Euclidean);
    /// for i in 0..32 {
    ///     let x = if i % 2 == 0 { 0.0 } else { 9.0 };
    ///     engine.insert(&DenseVector::from([x, 0.0]), i as f64 / 100.0);
    /// }
    /// let snap = engine.snapshot(0.32);
    /// assert_eq!(snap.n_clusters(), 2);
    /// assert_eq!(snap.points(), 32);
    /// // The snapshot is detached: it stays valid while the engine moves on.
    /// engine.insert(&DenseVector::from([50.0, 50.0]), 0.4);
    /// assert_eq!(snap.n_clusters(), 2);
    /// # Ok::<(), edm_core::ConfigError>(())
    /// ```
    pub fn snapshot(&self, t: Timestamp) -> ClusterSnapshot {
        let (rho, delta) = self.decision_graph(t);
        ClusterSnapshot {
            t,
            tau: self.tau_ctl.tau(),
            alpha: self.tau_ctl.alpha(),
            clusters: self.clusters(t),
            rho,
            delta,
            active_cells: self.active_ids.len(),
            reservoir_cells: self.reservoir_len(),
            reservoir_peak: self.reservoir_peak,
            points: self.stats.points,
            event_cursor: self.log.cursor(),
            stats: self.stats,
        }
    }

    /// Snapshot of the current clusters.
    pub fn clusters(&self, t: Timestamp) -> Vec<ClusterInfo> {
        let tau = self.tau_ctl.tau();
        let mut by_root: std::collections::HashMap<CellId, ClusterInfo> = Default::default();
        for id in self.sorted_active_ids() {
            let cell = self.slab.get(id);
            let root = tree::strong_root(&self.slab, id, tau);
            let info = by_root.entry(root).or_insert_with(|| ClusterInfo {
                id: self.registry.cluster_at_root(root).unwrap_or(u64::MAX),
                root,
                cells: Vec::new(),
                density: 0.0,
            });
            info.cells.push(id);
            info.density += cell.rho_at(t, self.decay());
        }
        let mut v: Vec<ClusterInfo> = by_root.into_values().collect();
        v.sort_by_key(|c| c.root);
        v
    }

    /// Cluster id of the nearest cell within `r`, or `None` when the point
    /// falls into no cell or an inactive (outlier) cell. Resolved through
    /// the neighbor index, so the query cost matches an insert's
    /// assignment step rather than a full slab scan.
    pub fn cluster_of(&self, p: &P, _t: Timestamp) -> Option<ClusterId> {
        match self.nearest_cell(p) {
            Some((id, _)) if self.slab.get(id).active => {
                let root = tree::strong_root(&self.slab, id, self.tau_ctl.tau());
                self.registry.cluster_at_root(root).or(Some(root.0 as u64))
            }
            _ => None,
        }
    }

    /// The (ρ, δ) pairs of all active cells at time `t` — the decision
    /// graph of Fig 2b/15. The root's infinite δ is reported as 1.05× the
    /// largest finite δ so it plots at the top of the graph; when **no**
    /// finite δ exists (single-cell and all-root streams) the root is
    /// anchored at `4r` — the same scale the τ₀ fallback of the
    /// initialization step uses — instead of an arbitrary constant, so
    /// the displayed graph and the engine's τ stay on one scale.
    pub fn decision_graph(&self, t: Timestamp) -> (Vec<f64>, Vec<f64>) {
        let mut rho = Vec::new();
        let mut delta = Vec::new();
        for id in self.sorted_active_ids() {
            let cell = self.slab.get(id);
            rho.push(cell.rho_at(t, self.decay()));
            delta.push(cell.delta);
        }
        let max_finite = delta.iter().copied().filter(|d| d.is_finite()).fold(0.0, f64::max);
        let root_display = if max_finite > 0.0 { max_finite * 1.05 } else { 4.0 * self.cfg.r };
        for d in delta.iter_mut() {
            if !d.is_finite() {
                *d = root_display;
            }
        }
        (rho, delta)
    }

    /// Sorted finite δ values of active cells (adaptive-τ input).
    fn active_deltas_sorted(&self) -> Vec<f64> {
        let mut ds: Vec<f64> = self
            .active_ids
            .iter()
            .map(|&id| self.slab.get(id).delta)
            .filter(|d| d.is_finite())
            .collect();
        ds.sort_by(|a, b| a.partial_cmp(b).expect("delta NaN"));
        ds
    }

    /// Read access to the cell slab (tests and diagnostics).
    pub fn slab(&self) -> &CellSlab<P> {
        &self.slab
    }

    /// Verifies all DP-Tree invariants at time `t`, plus the active-cell
    /// registry the dependency candidate pass walks (test support).
    pub fn check_invariants(&self, t: Timestamp) -> Result<(), String> {
        tree::check_invariants(&self.slab, t, self.decay())?;
        let truly_active = self.slab.iter().filter(|(_, c)| c.active).count();
        if truly_active != self.active_ids.len() {
            return Err(format!(
                "active registry holds {} ids, slab has {truly_active} active cells",
                self.active_ids.len()
            ));
        }
        let mut seen = edm_common::hash::fx_set();
        for &id in &self.active_ids {
            if !self.slab.contains(id) || !self.slab.get(id).active {
                return Err(format!("active registry lists non-active {id}"));
            }
            if !seen.insert(id) {
                return Err(format!("active registry lists {id} twice"));
            }
        }
        match (self.apex, self.densest_active(t)) {
            (a, b) if a == b => Ok(()),
            (a, b) => Err(format!("apex is {a:?}, densest active cell is {b:?}")),
        }
    }

    /// Verifies the neighbor index mirrors the live slab exactly — every
    /// live cell filed once where its seed says, nothing stale (test
    /// support; the index proptests call this after every operation).
    pub fn check_index(&self) -> Result<(), String> {
        self.index.check_coherence(&self.slab)
    }
}

/// Strict density order with id tie-break (ids ascending win).
#[inline]
fn denser_scalar(rho_a: f64, id_a: CellId, rho_b: f64, id_b: CellId) -> bool {
    rho_a > rho_b || (rho_a == rho_b && id_a < id_b)
}

/// Largest-gap τ heuristic over sorted δ values (the simulated user of the
/// initialization step; mirrors `edm_dp::DecisionGraph::suggest_tau`).
///
/// Root cells carry δ = ∞, which is an *absence* of a dependent distance,
/// not a gap: any infinite tail is dropped before the scan (the engine
/// already passes finite-only slices, but raw decision-graph deltas reach
/// here through tests and external callers). With fewer than two finite
/// values — single-cell and all-root streams — there is no gap to read
/// and the caller falls back to the `4r` scale, the same anchor
/// [`EdmStream::decision_graph`] displays the root at.
fn suggest_tau_from_deltas(sorted: &[f64]) -> Option<f64> {
    let finite = match sorted.iter().position(|d| !d.is_finite()) {
        Some(i) => &sorted[..i],
        None => sorted,
    };
    if finite.len() < 2 {
        return None;
    }
    let mut best = (0.0f64, None);
    for w in finite.windows(2) {
        let gap = w[1] / w[0].max(1e-12);
        if gap > best.0 {
            best = (gap, Some(0.5 * (w[0] + w[1])));
        }
    }
    best.1
}

impl<P: Clone + GridCoords, M: Metric<P>> edm_data::clusterer::StreamClusterer<P>
    for EdmStream<P, M>
{
    fn name(&self) -> &'static str {
        "EDMStream"
    }

    fn insert(&mut self, payload: &P, t: Timestamp) {
        EdmStream::insert(self, payload, t);
    }

    fn insert_batch(&mut self, batch: &[(P, Timestamp)]) {
        EdmStream::insert_batch(self, batch);
    }

    fn prepare(&mut self, _t: Timestamp) {
        // EDMStream maintains clusters online; the only deferred work is
        // the initialization of a stream shorter than the init buffer.
        self.force_init();
    }

    fn cluster_of(&self, payload: &P, t: Timestamp) -> Option<usize> {
        EdmStream::cluster_of(self, payload, t).map(|c| c as usize)
    }

    fn n_clusters(&self, _t: Timestamp) -> usize {
        EdmStream::n_clusters(self)
    }

    fn n_summaries(&self) -> usize {
        self.n_cells()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filters::FilterConfig;
    use crate::tau::TauMode;
    use edm_common::metric::Euclidean;
    use edm_common::point::DenseVector;

    /// A small-scale config: rate 100 pt/s, activation threshold ≈ 3.
    fn mini_cfg(r: f64) -> EdmConfig {
        EdmConfig::builder(r)
            .rate(100.0)
            .beta_for_threshold(3.0)
            .init_points(40)
            .tau_every(16)
            .maintenance_every(8)
            .build()
            .expect("mini config is valid")
    }

    /// Two tight blobs far apart; points alternate between them.
    fn feed_two_blobs(engine: &mut EdmStream<DenseVector, Euclidean>, n: usize) {
        for i in 0..n {
            let t = i as f64 / 100.0;
            let jitter = (i % 5) as f64 * 0.05;
            let p = if i % 2 == 0 {
                DenseVector::from([jitter, 0.0])
            } else {
                DenseVector::from([10.0 + jitter, 0.0])
            };
            engine.insert(&p, t);
        }
    }

    #[test]
    fn initialization_builds_two_clusters() {
        let mut e = EdmStream::new(mini_cfg(0.5), Euclidean);
        feed_two_blobs(&mut e, 200);
        assert!(e.is_initialized());
        assert_eq!(e.n_clusters(), 2, "tau = {}", e.tau());
        assert!(e.check_invariants(2.0).is_ok());
    }

    #[test]
    fn cluster_of_distinguishes_blobs_and_outliers() {
        let mut e = EdmStream::new(mini_cfg(0.5), Euclidean);
        feed_two_blobs(&mut e, 300);
        let t = 3.0;
        let a = e.cluster_of(&DenseVector::from([0.1, 0.0]), t);
        let b = e.cluster_of(&DenseVector::from([10.1, 0.0]), t);
        let far = e.cluster_of(&DenseVector::from([500.0, 0.0]), t);
        assert!(a.is_some() && b.is_some());
        assert_ne!(a, b);
        assert_eq!(far, None);
    }

    #[test]
    fn invariants_hold_throughout_a_noisy_stream() {
        let mut e = EdmStream::new(mini_cfg(0.6), Euclidean);
        // Deterministic pseudo-noise around three moving centers.
        let mut x = 0u64;
        for i in 0..600 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let u = ((x >> 33) as f64) / (u32::MAX as f64 / 2.0);
            let c = (i % 3) as f64 * 6.0 + (i as f64) * 0.002;
            let p = DenseVector::from([c + u * 0.8, u * 0.5]);
            let t = i as f64 / 100.0;
            e.insert(&p, t);
            if i % 50 == 0 && e.is_initialized() {
                e.check_invariants(t).unwrap();
            }
        }
        e.check_invariants(6.0).unwrap();
    }

    #[test]
    fn filters_do_not_change_the_result() {
        // The theorems claim the filters are exact: the final tree must be
        // identical with and without them.
        let run = |filters: FilterConfig| {
            let cfg = mini_cfg(0.6).to_builder().filters(filters).build().unwrap();
            let mut e = EdmStream::new(cfg, Euclidean);
            let mut x = 7u64;
            for i in 0..500 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let u = ((x >> 33) as f64) / (u32::MAX as f64 / 2.0);
                let c = (i % 2) as f64 * 8.0;
                e.insert(&DenseVector::from([c + u, u * 0.3]), i as f64 / 100.0);
            }
            // Capture (dep, delta) per live cell id.
            let mut state: Vec<(u32, Option<CellId>, f64)> =
                e.slab().iter().map(|(id, c)| (id.0, c.dep, c.delta)).collect();
            state.sort_by_key(|s| s.0);
            state
        };
        let wf = run(FilterConfig::none());
        let df = run(FilterConfig::density_only());
        let all = run(FilterConfig::all());
        assert_eq!(wf, df, "density filter changed the outcome");
        assert_eq!(df, all, "triangle filter changed the outcome");
    }

    #[test]
    fn filters_reduce_work() {
        // Three blobs with very different arrival rates: the cells end up
        // far apart in the density order, so most absorptions leave the
        // sparser cells strictly below the window — exactly what Theorem 1
        // prunes. (With two equally-fed blobs the cells leapfrog each other
        // every point and nothing can be pruned.)
        let feed = |e: &mut EdmStream<DenseVector, Euclidean>| {
            for i in 0..600usize {
                let t = i as f64 / 100.0;
                let which = match i % 20 {
                    0 => 2usize,     // 5% to blob 2
                    x if x < 6 => 1, // 25% to blob 1
                    _ => 0,          // 70% to blob 0
                };
                let jitter = (i % 5) as f64 * 0.05;
                e.insert(&DenseVector::from([which as f64 * 10.0 + jitter, 0.0]), t);
            }
        };
        let run = |filters: FilterConfig| {
            let cfg = mini_cfg(0.6).to_builder().filters(filters).build().unwrap();
            let mut e = EdmStream::new(cfg, Euclidean);
            feed(&mut e);
            (e.stats().filtered_density, e.stats().filtered_triangle)
        };
        let (fd, _) = run(FilterConfig::all());
        assert!(fd > 0, "density filter should prune candidates");
        let (fd_off, _) = run(FilterConfig::none());
        assert_eq!(fd_off, 0);
    }

    #[test]
    fn reservoir_cells_activate_on_absorption() {
        let mut e = EdmStream::new(mini_cfg(0.5), Euclidean);
        feed_two_blobs(&mut e, 100);
        let before_active = e.active_len();
        // Hammer a brand-new location until its cell activates.
        for i in 0..40 {
            let t = 1.0 + i as f64 / 100.0;
            e.insert(&DenseVector::from([50.0, 50.0]), t);
        }
        assert!(e.active_len() > before_active, "new region never activated");
        assert!(e.stats().activations > 0);
        assert!(e.check_invariants(1.4).is_ok());
    }

    #[test]
    fn starved_cluster_decays_to_reservoir() {
        let mut e = EdmStream::new(mini_cfg(0.5), Euclidean);
        feed_two_blobs(&mut e, 200);
        assert_eq!(e.n_clusters(), 2);
        // Feed only the left blob; advance time far enough for the right
        // blob's cells (thr ≈ 3) to decay below threshold.
        // Density ~50 → below 3 after ln(3/50)/ln(0.998) ≈ 1400 s.
        for i in 0..2_000 {
            let t = 2.0 + i as f64;
            e.insert(&DenseVector::from([(i % 5) as f64 * 0.05, 0.0]), t);
        }
        assert_eq!(e.n_clusters(), 1, "right blob should have decayed");
        assert!(e.stats().deactivations > 0);
        assert!(e
            .events_since(EventCursor::START)
            .iter()
            .any(|ev| matches!(ev.kind, EventKind::Disappear { .. })));
    }

    #[test]
    fn outdated_reservoir_cells_are_recycled() {
        let mut e = EdmStream::new(mini_cfg(0.5), Euclidean);
        feed_two_blobs(&mut e, 100);
        // A lone outlier cell.
        e.insert(&DenseVector::from([99.0, 99.0]), 1.0);
        let with_outlier = e.n_cells();
        // ΔT_del at rate 100, thr 3 is well under an hour; advance far past.
        let dt = e.config().delta_t_del();
        for i in 0..200 {
            let t = 2.0 + dt + i as f64;
            e.insert(&DenseVector::from([(i % 5) as f64 * 0.05, 0.0]), t);
        }
        assert!(e.stats().recycled > 0, "outlier cell should be recycled");
        assert!(e.n_cells() < with_outlier + 200);
    }

    #[test]
    fn merge_event_fires_when_blobs_bridge() {
        let mut e = EdmStream::new(mini_cfg(0.5), Euclidean);
        // Two blobs at distance 6 (r = 0.5): distinct clusters.
        for i in 0..300 {
            let t = i as f64 / 100.0;
            let jitter = (i % 5) as f64 * 0.05;
            let p = if i % 2 == 0 {
                DenseVector::from([jitter, 0.0])
            } else {
                DenseVector::from([6.0 + jitter, 0.0])
            };
            e.insert(&p, t);
        }
        assert_eq!(e.n_clusters(), 2, "tau {}", e.tau());
        // Fill the valley: a dense bridge between them.
        for i in 0..1_200 {
            let t = 3.0 + i as f64 / 100.0;
            let x = 0.5 + 5.0 * ((i % 11) as f64 / 11.0);
            e.insert(&DenseVector::from([x, 0.0]), t);
        }
        assert_eq!(e.n_clusters(), 1, "bridge should merge the blobs (tau {})", e.tau());
        assert!(
            e.events_since(EventCursor::START)
                .iter()
                .any(|ev| matches!(ev.kind, EventKind::Merge { .. })),
            "no merge event recorded; events: {:?}",
            e.events_recorded()
        );
    }

    #[test]
    fn stream_clusterer_interface_works() {
        use edm_data::clusterer::StreamClusterer;
        let mut e = EdmStream::new(mini_cfg(0.5), Euclidean);
        let p = DenseVector::from([0.0, 0.0]);
        StreamClusterer::insert(&mut e, &p, 0.0);
        // Queries answer from prepared state only: before `prepare`, a
        // stream still inside the init buffer reports nothing.
        assert_eq!(StreamClusterer::n_clusters(&e, 0.0), 0);
        // `prepare` forces initialization. With the age-adjusted threshold
        // a lone fresh point bootstraps one cluster (the threshold floor
        // is exactly one fresh point).
        StreamClusterer::prepare(&mut e, 0.0);
        assert_eq!(StreamClusterer::n_clusters(&e, 0.0), 1);
        assert!(e.is_initialized());
        assert_eq!(StreamClusterer::name(&e), "EDMStream");
    }

    #[test]
    fn try_insert_rejects_time_regression_and_batch_reports_index() {
        let mut e = EdmStream::new(mini_cfg(0.5), Euclidean);
        assert!(e.try_insert(&DenseVector::from([0.0, 0.0]), 1.0).is_ok());
        let err = e.try_insert(&DenseVector::from([1.0, 0.0]), 0.5).unwrap_err();
        assert_eq!(err, crate::error::EdmError::TimeRegression { now: 1.0, t: 0.5 });
        // Batch: index 1 regresses; point 0 is already ingested.
        let points = e.stats().points;
        let batch = vec![
            (DenseVector::from([0.1, 0.0]), 1.5),
            (DenseVector::from([0.2, 0.0]), 0.2),
            (DenseVector::from([0.3, 0.0]), 2.0),
        ];
        let (i, err) = e.try_insert_batch(&batch).unwrap_err();
        assert_eq!(i, 1);
        assert!(matches!(err, crate::error::EdmError::TimeRegression { .. }));
        assert_eq!(e.stats().points, points + 1);
    }

    #[test]
    fn snapshot_freezes_state_and_aligns_event_cursor() {
        let mut e = EdmStream::new(mini_cfg(0.5), Euclidean);
        feed_two_blobs(&mut e, 300);
        let snap = e.snapshot(3.0);
        assert_eq!(snap.n_clusters(), 2);
        assert_eq!(snap.n_clusters(), e.n_clusters());
        assert_eq!(snap.active_cells(), e.active_len());
        assert_eq!(snap.n_cells(), e.n_cells());
        assert_eq!(snap.points(), 300);
        assert!((snap.tau() - e.tau()).abs() < 1e-12);
        let (rho, delta) = snap.decision_graph();
        assert_eq!(rho.len(), e.active_len());
        assert!(delta.iter().all(|d| d.is_finite()));
        // Nothing new happened since the snapshot: its cursor sees no events.
        assert!(e.events_since(snap.event_cursor()).is_empty());
        // The snapshot stays valid after the engine moves on.
        for i in 0..400 {
            e.insert(&DenseVector::from([50.0, 50.0]), 3.0 + i as f64 / 100.0);
        }
        assert_eq!(snap.n_clusters(), 2);
    }

    #[test]
    fn take_events_drains_incrementally() {
        let mut e = EdmStream::new(mini_cfg(0.5), Euclidean);
        feed_two_blobs(&mut e, 200);
        let first = e.take_events();
        assert!(!first.is_empty(), "initialization must emerge clusters");
        assert!(e.take_events().is_empty(), "drained log must be empty");
        let recorded = e.events_recorded();
        // A new dense region triggers fresh events only.
        for i in 0..60 {
            e.insert(&DenseVector::from([50.0, 50.0]), 2.0 + i as f64 / 100.0);
        }
        let fresh = e.take_events();
        assert!(!fresh.is_empty(), "emergence must be recorded");
        assert_eq!(e.events_recorded(), recorded + fresh.len() as u64);
    }

    #[test]
    fn decision_graph_reports_finite_deltas() {
        let mut e = EdmStream::new(mini_cfg(0.5), Euclidean);
        feed_two_blobs(&mut e, 300);
        let (rho, delta) = e.decision_graph(3.0);
        assert_eq!(rho.len(), delta.len());
        assert!(!rho.is_empty());
        assert!(delta.iter().all(|d| d.is_finite()));
        // Exactly one cell (the root) carries the display-max δ.
        let max = delta.iter().cloned().fold(0.0, f64::max);
        assert!(delta.iter().filter(|&&d| d == max).count() >= 1);
    }

    #[test]
    fn static_tau_is_respected() {
        let cfg = mini_cfg(0.5).to_builder().tau_mode(TauMode::Static(2.5)).build().unwrap();
        let mut e = EdmStream::new(cfg, Euclidean);
        feed_two_blobs(&mut e, 300);
        assert_eq!(e.tau(), 2.5);
    }

    #[test]
    fn single_cell_stream_anchors_root_delta_at_the_tau_fallback() {
        // One point → one active root with δ = ∞ and no finite δ anywhere.
        // Regression: the decision graph used to display that root at a
        // hardcoded 1.0 while the τ initializer fell back to 4r, so the
        // "user" saw a graph on a different scale than the τ in force.
        let mut e = EdmStream::new(mini_cfg(0.5), Euclidean);
        e.insert(&DenseVector::from([3.0, 3.0]), 0.0);
        e.force_init();
        assert_eq!(e.active_len(), 1);
        let (rho, delta) = e.decision_graph(0.0);
        assert_eq!(rho.len(), 1);
        assert_eq!(delta, vec![4.0 * 0.5], "root must display at the 4r fallback scale");
        assert_eq!(e.tau(), 4.0 * 0.5, "adaptive τ₀ falls back to 4r with no finite δ");
        assert_eq!(e.n_clusters(), 1);
    }

    #[test]
    fn all_root_stream_keeps_graph_and_tau_consistent() {
        // Every active cell its own cluster (tiny static τ): the single
        // tree root still carries δ = ∞ and must display at 1.05× the
        // largest *finite* δ — never at a value below it, and never at a
        // constant detached from the data scale.
        let cfg = mini_cfg(0.5).to_builder().tau_mode(TauMode::Static(0.01)).build().unwrap();
        let mut e = EdmStream::new(cfg, Euclidean);
        feed_two_blobs(&mut e, 300);
        assert_eq!(e.n_clusters(), e.active_len(), "tiny τ: every active cell is a root");
        let (_, delta) = e.decision_graph(3.0);
        let max_finite = e
            .slab()
            .iter()
            .filter(|(_, c)| c.active && c.delta.is_finite())
            .map(|(_, c)| c.delta)
            .fold(0.0, f64::max);
        assert!(max_finite > 0.0);
        let display_max = delta.iter().cloned().fold(0.0, f64::max);
        assert!((display_max - 1.05 * max_finite).abs() < 1e-9, "{display_max} vs {max_finite}");
    }

    #[test]
    fn suggest_tau_ignores_infinite_root_deltas() {
        // Raw decision-graph slices include the root's ∞; the gap scan
        // must not treat it as the largest gap.
        assert_eq!(suggest_tau_from_deltas(&[1.0, 1.1, f64::INFINITY]), Some(1.05));
        assert_eq!(suggest_tau_from_deltas(&[1.0, f64::INFINITY]), None);
        assert_eq!(suggest_tau_from_deltas(&[f64::INFINITY, f64::INFINITY]), None);
        assert_eq!(suggest_tau_from_deltas(&[2.0]), None);
    }

    #[test]
    fn grid_index_prunes_assignment_work_and_stays_coherent() {
        let mut e = EdmStream::new(mini_cfg(0.5), Euclidean);
        // Many well-separated cells, then traffic to one of them.
        for i in 0..40 {
            e.insert(
                &DenseVector::from([(i % 8) as f64 * 5.0, (i / 8) as f64 * 5.0]),
                i as f64 / 100.0,
            );
        }
        e.force_init();
        for i in 0..200 {
            e.insert(&DenseVector::from([0.1, 0.1]), 1.0 + i as f64 / 100.0);
        }
        assert!(e.stats().index_pruned > 0, "grid should skip far cells");
        assert!(e.stats().index_prune_rate() > 0.5, "rate {}", e.stats().index_prune_rate());
        e.check_index().unwrap();
        let snap = e.snapshot(3.0);
        assert_eq!(snap.stats().index_pruned, e.stats().index_pruned);
    }

    #[test]
    fn grid_downgrades_for_metrics_without_the_axis_bound() {
        // A scaled Euclidean violates dist >= |a[k]-b[k]|: coordinate
        // distance 3 is metric distance 0.3 < r, so a grid probing only
        // nearby buckets would silently miss the absorbing cell and
        // spawn a spurious one. The engine must downgrade to the exact
        // scan because the metric never vouched for the bound.
        struct ScaledEuclidean;
        impl Metric<DenseVector> for ScaledEuclidean {
            fn dist(&self, a: &DenseVector, b: &DenseVector) -> f64 {
                0.1 * a.dist(b)
            }
            fn name(&self) -> &'static str {
                "scaled-euclidean"
            }
            // dominates_coordinate_axes: default false.
        }
        let mut e = EdmStream::new(mini_cfg(0.5), ScaledEuclidean);
        e.insert(&DenseVector::from([0.0, 0.0]), 0.0);
        e.force_init();
        // Coordinate distance 3.0 >> r, metric distance 0.3 < r: absorbed.
        for i in 1..40 {
            e.insert(&DenseVector::from([3.0, 0.0]), i as f64 / 100.0);
        }
        assert_eq!(e.n_cells(), 1, "the far-in-coordinates point must still absorb");
        assert_eq!(e.stats().index_pruned, 0, "engine must run the exact scan");
        e.check_index().unwrap();
    }

    #[test]
    fn linear_scan_index_probes_everything() {
        let cfg = mini_cfg(0.5)
            .to_builder()
            .neighbor_index(crate::index::NeighborIndexKind::LinearScan)
            .build()
            .unwrap();
        let mut e = EdmStream::new(cfg, Euclidean);
        feed_two_blobs(&mut e, 200);
        assert_eq!(e.stats().index_pruned, 0);
        assert!(e.stats().index_probed > 0);
        e.check_index().unwrap();
    }

    #[test]
    fn stats_count_points_and_cells() {
        let mut e = EdmStream::new(mini_cfg(0.5), Euclidean);
        feed_two_blobs(&mut e, 150);
        assert_eq!(e.stats().points, 150);
        assert!(e.stats().absorbed > 0);
        // A far-away point after initialization must seed a fresh cell.
        e.insert(&DenseVector::from([321.0, 321.0]), 1.51);
        assert_eq!(e.stats().new_cells, 1);
        assert!(e.n_cells() >= 3);
    }
}
