//! Criterion bench: steady-state maintenance cost vs. slab size, and
//! sharded vs. single-grid insert latency.
//!
//! Two scenarios:
//!
//! * **`maintenance_scaling`** isolates the per-point cost of the
//!   maintenance cadence while the outlier reservoir grows: a fixed hot
//!   set of 64 active cells takes all the traffic (constant decay-sweep
//!   work) over reservoirs of 512–32 768 idle cells that never expire.
//!   Before the idle-ordered recycling queue, every `maintenance_every`
//!   points paid an O(total cells) slab walk looking for expired cells —
//!   latency grew with the reservoir. With the queue, recycling peeks the
//!   oldest idle entry and stops (nothing is expired), so the series must
//!   stay **flat** as the reservoir scales. That flatness *is* the
//!   acceptance criterion for the O(recycled) claim.
//! * **`shard_insert_latency`** prices the sharding seam: the same
//!   assignment workload as `index_scaling_insert` under 1, 2 and 4
//!   shards. Single-threaded queries consult every shard, so expect a
//!   small constant overhead per extra shard (each probes its own 3^d
//!   shell) and flat scaling in cell count for all shard counts — the
//!   payoff of sharding is structural isolation for the multi-core work
//!   the ROADMAP points at, not single-thread speed.

use std::num::NonZeroUsize;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use edm_common::metric::Euclidean;
use edm_common::point::DenseVector;
use edm_core::index::NeighborIndexKind;
use edm_core::{EdmConfig, EdmStream};

/// Points inserted per timed sample — smooths timer resolution.
const BATCH: usize = 200;

/// Engine with a 64-cell active hot set and `n_reservoir` idle cells that
/// never expire, running the maintenance cadence every 16 points.
fn engine_with_reservoir(n_reservoir: usize) -> (EdmStream<DenseVector, Euclidean>, f64) {
    let cfg = EdmConfig::builder(0.5)
        .rate(1_000.0)
        .beta_for_threshold(3.0)
        .age_adjusted_threshold(false)
        .init_points(1)
        .tau_every(1 << 40)
        .maintenance_every(16)
        .recycle_horizon(f64::MAX)
        .track_evolution(false)
        .build()
        .expect("valid bench configuration");
    let mut e = EdmStream::new(cfg, Euclidean);
    let mut t = 0.0;
    // Reservoir: one-point cells on a far-away lattice.
    let side = (n_reservoir as f64).sqrt().ceil() as usize;
    let mut made = 0;
    'outer: for gy in 0..side {
        for gx in 0..side {
            t += 1e-4;
            e.insert(&DenseVector::from([gx as f64 * 2.0, 100.0 + gy as f64 * 2.0]), t);
            made += 1;
            if made == n_reservoir {
                break 'outer;
            }
        }
    }
    // Hot set: 64 sites fed until active.
    let probes: Vec<DenseVector> =
        (0..64).map(|i| DenseVector::from([(i % 8) as f64 * 2.0, (i / 8) as f64 * 2.0])).collect();
    for _ in 0..6 {
        for p in &probes {
            t += 1e-4;
            e.insert(p, t);
        }
    }
    assert_eq!(e.active_len(), 64, "warmup must activate exactly the hot set");
    assert_eq!(e.reservoir_len(), n_reservoir, "reservoir must hold every idle cell");
    (e, t)
}

/// Maintenance cost vs. reservoir size: flat ⇔ recycling is O(recycled),
/// growing ⇔ something still walks the slab.
fn bench_maintenance_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("maintenance_scaling");
    group.sample_size(30);
    for &n_reservoir in &[512usize, 2_048, 8_192, 32_768] {
        let (mut e, mut t) = engine_with_reservoir(n_reservoir);
        let probes: Vec<DenseVector> = (0..64)
            .map(|i| DenseVector::from([(i % 8) as f64 * 2.0, (i / 8) as f64 * 2.0]))
            .collect();
        let mut i = 0usize;
        group.bench_function(BenchmarkId::new("grid", n_reservoir), |b| {
            b.iter(|| {
                for _ in 0..BATCH {
                    t += 1e-5;
                    e.insert(&probes[i % probes.len()], t);
                    i += 1;
                }
            })
        });
        assert_eq!(e.reservoir_len(), n_reservoir, "bench stream must not recycle or create");
    }
    group.finish();
}

/// Builds an engine of `n_cells` well-separated reservoir cells under the
/// given shard count (the `index_scaling_insert` setup, sharded).
fn sharded_engine(shards: usize, n_cells: usize) -> (EdmStream<DenseVector, Euclidean>, f64) {
    let cfg = EdmConfig::builder(0.5)
        .rate(1_000.0)
        .beta_for_threshold(1e5)
        .age_adjusted_threshold(false)
        .init_points(1)
        .tau_every(1 << 40)
        .maintenance_every(1 << 40)
        .recycle_horizon(f64::MAX)
        .track_evolution(false)
        .neighbor_index(NeighborIndexKind::Grid { side: None })
        .shards(NonZeroUsize::new(shards).expect("bench shard counts are nonzero"))
        .build()
        .expect("valid bench configuration");
    let mut e = EdmStream::new(cfg, Euclidean);
    let side = (n_cells as f64).sqrt().ceil() as usize;
    let mut t = 0.0;
    let mut made = 0;
    'outer: for gy in 0..side {
        for gx in 0..side {
            t += 1e-4;
            e.insert(&DenseVector::from([gx as f64 * 2.0, gy as f64 * 2.0]), t);
            made += 1;
            if made == n_cells {
                break 'outer;
            }
        }
    }
    assert_eq!(e.n_cells(), n_cells, "every seed must found its own cell");
    (e, t)
}

/// Sharded vs. single-grid assignment latency. All series must stay flat
/// in cell count; extra shards cost a small constant per insert.
fn bench_shard_insert_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("shard_insert_latency");
    group.sample_size(30);
    for &n_cells in &[2_048usize, 8_192] {
        for shards in [1usize, 2, 4] {
            let (mut e, mut t) = sharded_engine(shards, n_cells);
            let probes: Vec<DenseVector> = (0..64)
                .map(|i| {
                    let jitter = (i % 5) as f64 * 0.05;
                    DenseVector::from([(i % 8) as f64 * 2.0 + jitter, (i / 8) as f64 * 2.0])
                })
                .collect();
            let mut i = 0usize;
            let label = match shards {
                1 => "shards1",
                2 => "shards2",
                _ => "shards4",
            };
            group.bench_function(BenchmarkId::new(label, n_cells), |b| {
                b.iter(|| {
                    for _ in 0..BATCH {
                        t += 1e-5;
                        e.insert(&probes[i % probes.len()], t);
                        i += 1;
                    }
                })
            });
            assert_eq!(e.n_cells(), n_cells, "bench stream must not create cells");
        }
    }
    group.finish();
}

criterion_group!(benches, bench_maintenance_scaling, bench_shard_insert_latency);
criterion_main!(benches);
