//! Ingest layer: point assignment and new-cell admission (paper §4.1).
//!
//! The only layer that *creates* cells. Every entry point funnels into
//! [`EdmStream::process`]: resolve the assignment query through the
//! neighbor index, absorb or admit, then hand density-order consequences
//! to the maintenance layer and fire the cadenced sweeps. The
//! initialization batch pass (§4.1 "Initialization") lives here too — it
//! is admission in bulk.

use edm_common::metric::Metric;
use edm_common::point::GridCoords;
use edm_common::time::Timestamp;

use crate::cell::{Cell, CellId};
use crate::error::EdmError;
use crate::index::NeighborIndex;
use crate::tree;

use super::parallel::ProbeSlot;
use super::{suggest_tau_from_deltas, EdmStream, Phase};

/// Points handed to one parallel probe-then-commit round. Bounding the
/// round keeps phase-1 results fresh: probes run against the state at the
/// round's start, so the longer the round, the more commits can invalidate
/// the tail (each invalidation re-probes serially — correct, just wasted
/// work).
const PARALLEL_CHUNK: usize = 1024;

/// Cell births tracked per round before the commit loop stops checking
/// birth-by-birth and just re-probes every remaining point (at that churn,
/// the conflict checks cost more than the probes they might save).
const MAX_BIRTH_TRACKING: usize = 32;

/// Per-point distance cache over slab slots with O(1) reset.
///
/// The assignment scan records every |p, s_c| it actually computes; the
/// Theorem 2 triangle filter then reads them back for free. Entries are
/// validated by an epoch stamp instead of clearing the table each point —
/// a grid-indexed scan probes only a handful of cells, and wiping the
/// whole table would itself be the linear cost the index removes.
#[derive(Debug, Clone, Default)]
pub(super) struct ScratchDistances {
    dist: Vec<f64>,
    stamp: Vec<u64>,
    epoch: u64,
}

impl ScratchDistances {
    /// Starts a new point's scan: grows to `slots` and invalidates every
    /// previous entry by bumping the epoch.
    fn begin(&mut self, slots: usize) {
        self.dist.resize(slots, f64::INFINITY);
        self.stamp.resize(slots, 0);
        self.epoch += 1;
    }

    /// Records the exact distance for a slot.
    #[inline]
    fn set(&mut self, slot: usize, d: f64) {
        self.dist[slot] = d;
        self.stamp[slot] = self.epoch;
    }

    /// The exact distance for a slot, if this point's scan computed it.
    #[inline]
    pub(super) fn get(&self, slot: usize) -> Option<f64> {
        (self.stamp.get(slot) == Some(&self.epoch)).then(|| self.dist[slot])
    }
}

impl<P: Clone + GridCoords, M: Metric<P>> EdmStream<P, M> {
    /// Feeds one stream point — the infallible hot path. Out-of-order
    /// timestamps are a debug assertion here; ingest from untrusted
    /// transports through [`EdmStream::try_insert`] instead.
    pub fn insert(&mut self, p: &P, t: Timestamp) {
        debug_assert!(t >= self.now - 1e-9, "stream time must not go backwards");
        self.start.get_or_insert(t);
        self.now = self.now.max(t);
        self.stats.points += 1;
        match &mut self.phase {
            Phase::Caching(buf) => {
                buf.push((p.clone(), t));
                if buf.len() >= self.cfg.init_points {
                    self.initialize();
                }
            }
            Phase::Running => self.process(p, t),
        }
    }

    /// Feeds one stream point, rejecting timestamps behind the stream
    /// clock with [`EdmError::TimeRegression`] instead of asserting.
    pub fn try_insert(&mut self, p: &P, t: Timestamp) -> Result<(), EdmError> {
        if t < self.now - 1e-9 {
            return Err(EdmError::TimeRegression { now: self.now, t });
        }
        self.insert(p, t);
        Ok(())
    }

    /// Feeds a batch of stream points in order. Observationally equivalent
    /// to inserting each point individually — batching exists so callers
    /// (and the [`edm_data::clusterer::StreamClusterer`] harness) drive
    /// one uniform interface; per-point maintenance cadences still fire at
    /// the same points.
    ///
    /// With [`crate::EdmConfigBuilder::ingest_threads`] above 1 the batch
    /// runs the two-phase probe-then-commit pipeline: assignment probes
    /// fan out across scoped worker threads against read-only state, then
    /// commits apply serially in timestamp order, re-probing any point an
    /// earlier commit's structural change could have affected (see the
    /// `engine/parallel.rs` module docs and the README's "Threading
    /// model"). Output is identical either way — the default of 1 thread
    /// *is* the plain serial loop.
    pub fn insert_batch(&mut self, batch: &[(P, Timestamp)])
    where
        P: Sync,
    {
        if self.cfg.ingest_threads <= 1 {
            for (p, t) in batch {
                self.insert(p, *t);
            }
            return;
        }
        let mut rest = batch;
        // The initialization buffer fills serially: initialization is
        // already a batch pass of its own, and its cells are born at
        // unpredictable points — not worth probing ahead of.
        while let Some(((p, t), tail)) = rest.split_first() {
            if self.is_initialized() {
                break;
            }
            self.insert(p, *t);
            rest = tail;
        }
        while !rest.is_empty() {
            // A round this small cannot amortize a thread spawn.
            if rest.len() < 2 {
                for (p, t) in rest {
                    self.insert(p, *t);
                }
                return;
            }
            let take = rest.len().min(PARALLEL_CHUNK);
            let (round, tail) = rest.split_at(take);
            self.probe_then_commit(round);
            rest = tail;
        }
    }

    /// Batch variant of [`EdmStream::try_insert`]: stops at the first
    /// out-of-order timestamp, reporting its index alongside the error;
    /// points before it are already ingested.
    pub fn try_insert_batch(&mut self, batch: &[(P, Timestamp)]) -> Result<(), (usize, EdmError)>
    where
        P: Sync,
    {
        if self.cfg.ingest_threads <= 1 {
            for (i, (p, t)) in batch.iter().enumerate() {
                self.try_insert(p, *t).map_err(|e| (i, e))?;
            }
            return Ok(());
        }
        // Find the first regression upfront so the parallel path only ever
        // sees a clean prefix; like the serial loop, everything before the
        // offender is ingested.
        let mut now = self.now;
        for (i, (_, t)) in batch.iter().enumerate() {
            if *t < now - 1e-9 {
                self.insert_batch(&batch[..i]);
                return Err((i, EdmError::TimeRegression { now, t: *t }));
            }
            now = now.max(*t);
        }
        self.insert_batch(batch);
        Ok(())
    }

    // ----- parallel probe-then-commit (see `parallel.rs`) -----

    /// One bounded round of the two-phase pipeline: fan the round's
    /// assignment probes out across the worker pool (phase 1, read-only),
    /// then commit serially in timestamp order (phase 2), revalidating any
    /// probe whose answer an earlier commit could have changed.
    fn probe_then_commit(&mut self, round: &[(P, Timestamp)])
    where
        P: Sync,
    {
        let radius = self.cfg.r;
        let mut pool = std::mem::take(&mut self.probe_pool);
        let slots =
            pool.run(self.cfg.ingest_threads, round, &self.index, &self.slab, &self.metric, radius);
        self.stats.probe_tasks += round.len() as u64;
        self.stats.parallel_batches += 1;

        // Commit phase. A cached probe stays valid while the structures it
        // read are untouched *near the point*: cell births are tracked
        // seed-by-seed and checked through the index's conflict geometry;
        // recycling and grid rebuilds (both only possible inside the
        // maintenance cadence) invalidate every remaining probe — they
        // remove or re-file cells, which birth tracking cannot describe.
        let mut births: Vec<(CellId, P)> = Vec::new();
        let mut invalidate_all = false;
        let recycled_before = self.stats.recycled;
        let rebuilds_before = self.stats.grid_rebuilds;
        for ((p, t), slot) in round.iter().zip(slots.iter_mut()) {
            debug_assert!(*t >= self.now - 1e-9, "stream time must not go backwards");
            self.start.get_or_insert(*t);
            self.now = self.now.max(*t);
            self.stats.points += 1;
            let stale = invalidate_all
                || births.iter().any(|(id, b)| {
                    self.index.probe_conflicts(p, *id, b, radius, &self.slab, &self.metric)
                });
            let nearest = if stale {
                self.stats.probe_revalidations += 1;
                self.scan_distances(p)
            } else {
                if !births.is_empty() {
                    // A birth happened but its conflict geometry cleared
                    // this probe — before the per-index horizons, any
                    // birth in the round forced a revalidation here.
                    self.stats.probe_revalidations_avoided += 1;
                }
                self.replay_probe(slot)
            };
            if let Some(born) = self.process_resolved(p, *t, nearest) {
                if births.len() < MAX_BIRTH_TRACKING {
                    births.push((born, self.slab.get(born).seed.clone()));
                } else {
                    invalidate_all = true;
                }
            }
            if self.stats.recycled != recycled_before || self.stats.grid_rebuilds != rebuilds_before
            {
                invalidate_all = true;
            }
        }
        self.probe_pool = pool;
    }

    /// Replays a still-valid cached probe: stamps its recorded distances
    /// into the scratch table and accounts the counters exactly as the
    /// serial scan at this instant would have (the probed set is identical
    /// by the validity argument; the pruned count uses the *current* slab
    /// population, which is what the serial scan would see).
    fn replay_probe(&mut self, slot: &ProbeSlot) -> Option<(CellId, f64)> {
        self.scratch.begin(self.slab.capacity_slots());
        for &(id, d) in &slot.probes {
            self.scratch.set(id.0 as usize, d);
        }
        self.stats.index_probed += slot.probes.len() as u64;
        self.stats.index_pruned += self.slab.len() as u64 - slot.probes.len() as u64;
        slot.best
    }

    /// Forces initialization with whatever is buffered (no-op when already
    /// running). Needed for streams shorter than `init_points` and before
    /// early queries.
    pub fn force_init(&mut self) {
        if matches!(self.phase, Phase::Caching(_)) {
            self.initialize();
        }
    }

    /// True once the initialization step has run.
    pub fn is_initialized(&self) -> bool {
        matches!(self.phase, Phase::Running)
    }

    // ----- initialization (paper §4.1 "Initialization") -----

    fn initialize(&mut self) {
        let buf = match std::mem::replace(&mut self.phase, Phase::Running) {
            Phase::Caching(buf) => buf,
            Phase::Running => return,
        };
        let t = self.now;
        // Build cells by sequential nearest-seed assignment.
        for (p, tp) in buf {
            match self.nearest_cell(&p) {
                Some((cid, _)) => {
                    let decay = self.cfg.decay;
                    self.slab.get_mut(cid).absorb(tp, &decay);
                }
                None => {
                    let id = self.slab.insert(Cell::new(p, tp));
                    self.index.on_insert(id, &self.slab.get(id).seed, &self.slab, &self.metric);
                }
            }
        }
        // Activate dense cells and wire the DP-Tree among them, scanning in
        // density order (the O(k²) batch pass the paper performs once).
        let mut order: Vec<(f64, CellId)> =
            self.slab.iter().map(|(id, c)| (c.rho_at(t, self.decay()), id)).collect();
        order.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("density NaN").then(a.1.cmp(&b.1)));
        let thr = self.threshold_at(t);
        let mut placed: Vec<CellId> = Vec::new();
        for &(rho, id) in &order {
            if rho < thr {
                break; // sorted: everything after is inactive too
            }
            self.slab.get_mut(id).active = true;
            self.active_ids.push(id);
            let mut best: Option<(f64, CellId)> = None;
            for &prev in &placed {
                let d = self.metric.dist(&self.slab.get(id).seed, &self.slab.get(prev).seed);
                if best.is_none_or(|(bd, bid)| d < bd || (d == bd && prev < bid)) {
                    best = Some((d, prev));
                }
            }
            if let Some((d, dep)) = best {
                tree::attach(&mut self.slab, id, dep, d);
            }
            placed.push(id);
        }
        // The density-ordered pass placed the densest cell first.
        self.apex = placed.first().copied();
        // Cells left in the reservoir enter the idle order with their
        // final absorption time — from here on the recycling layer never
        // looks at the slab to find them.
        for (id, cell) in self.slab.iter() {
            if !cell.active {
                self.idle.push(id, cell.last_absorb);
            }
        }
        // τ initialization: the "user" picks τ₀ from the decision graph
        // (largest-gap heuristic unless configured explicitly).
        let mut deltas = self.active_deltas_sorted();
        let tau0 = self
            .cfg
            .tau0
            .unwrap_or_else(|| suggest_tau_from_deltas(&deltas).unwrap_or(4.0 * self.cfg.r));
        self.tau_ctl.initialize(&deltas, tau0);
        deltas.clear();
        self.structure_dirty = true;
        self.run_diff(t);
        self.refresh_shard_stats();
        self.update_reservoir_peak();
    }

    // ----- per-point processing (paper §4.1 "Key Operations") -----

    fn process(&mut self, p: &P, t: Timestamp) {
        let nearest = self.scan_distances(p);
        self.process_resolved(p, t, nearest);
    }

    /// Everything `process` does after the assignment probe. Shared by the
    /// serial path (which just probed) and the parallel commit loop (which
    /// replayed a phase-1 probe); both must already have filled the
    /// scratch table for this point. Returns the id of the cell the point
    /// seeded, if it seeded one — the commit loop's conflict-tracking
    /// input.
    fn process_resolved(
        &mut self,
        p: &P,
        t: Timestamp,
        nearest: Option<(CellId, f64)>,
    ) -> Option<CellId> {
        let mut born = None;
        match nearest {
            Some((cid, _)) => {
                self.stats.absorbed += 1;
                let decay = self.cfg.decay;
                let (before, after) = self.slab.get_mut(cid).absorb(t, &decay);
                let was_active = self.slab.get(cid).active;
                if was_active {
                    self.dependency_maintenance(p, cid, before, after, t, false);
                } else if after >= self.threshold_at(t) {
                    // Cluster-cell emergence (DP-Tree insertion, §4.3).
                    self.slab.get_mut(cid).active = true;
                    self.active_ids.push(cid);
                    self.stats.activations += 1;
                    self.dependency_maintenance(p, cid, before, after, t, true);
                    self.structure_dirty = true;
                } else {
                    // Still in the reservoir; its idle clock restarts
                    // (the entry carrying the old absorption time goes
                    // stale and is dropped lazily on pop).
                    self.idle.push(cid, t);
                }
            }
            None => {
                // New cluster-cell, cached in the reservoir (low density).
                self.stats.new_cells += 1;
                let id = self.slab.insert(Cell::new(p.clone(), t));
                self.index.on_insert(id, &self.slab.get(id).seed, &self.slab, &self.metric);
                self.idle.push(id, t);
                self.refresh_shard_stats();
                born = Some(id);
            }
        }
        if self.stats.points.is_multiple_of(self.cfg.maintenance_every) {
            self.maintenance(t);
        }
        if self.stats.points.is_multiple_of(self.cfg.tau_every) {
            let deltas = self.active_deltas_sorted();
            if self.tau_ctl.update(&deltas) {
                self.structure_dirty = true;
            }
        }
        if self.structure_dirty {
            self.run_diff(t);
        }
        self.update_reservoir_peak();
        born
    }

    /// Resolves the assignment query through the neighbor index: the
    /// nearest cell within `r`, stamping every distance the index actually
    /// computed into the scratch table (the triangle filter's free input)
    /// and accounting probed vs. pruned cells.
    fn scan_distances(&mut self, p: &P) -> Option<(CellId, f64)> {
        self.scratch.begin(self.slab.capacity_slots());
        let scratch = &mut self.scratch;
        let mut probed = 0u64;
        let best =
            self.index.nearest_within(p, self.cfg.r, &self.slab, &self.metric, &mut |id, d| {
                probed += 1;
                scratch.set(id.0 as usize, d);
            });
        self.stats.index_probed += probed;
        self.stats.index_pruned += self.slab.len() as u64 - probed;
        best
    }

    /// Nearest cell within `r` without touching scratch (initialization
    /// and query paths).
    pub(super) fn nearest_cell(&self, p: &P) -> Option<(CellId, f64)> {
        self.index.nearest_within(p, self.cfg.r, &self.slab, &self.metric, &mut |_, _| {})
    }
}
