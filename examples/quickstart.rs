//! Quickstart: cluster a simple evolving 2-D stream and watch the result
//! update in real time — a new cluster emerges, an old one fades away.
//!
//! Walks the whole builder → session → snapshot API: typed configuration
//! errors, batch ingestion, frozen read-only snapshots, and draining the
//! evolution-event log.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use edmstream::{
    DecayModel, DenseVector, EdmConfig, EdmStream, Euclidean, EventKind, NeighborIndexKind, TauMode,
};

fn main() {
    // An engine for 2-D points: cells of radius 0.5, a 100 pt/s stream,
    // a decay half-life of ~6 s (yesterday's points barely matter), and
    // an activation threshold of roughly three sustained points/sec.
    // `build()` returns a typed `ConfigError` instead of panicking —
    // `beta(0.0)` here would give `Err(ConfigError::BetaOutOfRange { .. })`.
    let cfg = EdmConfig::builder(0.5)
        .rate(100.0)
        .decay(DecayModel::new(0.998, 60.0))
        .beta(3.4e-3)
        .init_points(100)
        .recycle_horizon(30.0)
        // Play the paper's interactive user: peaks at dependent distance
        // ≥ 2 are separate clusters. The adaptive policy has its own
        // example (`adaptive_tau`).
        .tau_mode(TauMode::Static(2.0))
        // The default — spelled out here to show the knob: cell lookups go
        // through a uniform grid with bucket side r, so an insert probes
        // only the 3x3 bucket shell around the point instead of every
        // cell. `LinearScan` is the exact fallback for exotic metrics.
        // With `side: None` the grid also auto-tunes its bucket side when
        // mean occupancy leaves the target band (EngineStats counts the
        // rebuilds in `grid_rebuilds`).
        .neighbor_index(NeighborIndexKind::Grid { side: None })
        // Also the default: one index shard. Raising it splits the grid
        // into hash-independent per-shard grids (occupancy per shard in
        // `EngineStats::shard_cells`) — the isolation seam for multi-core
        // work; leave at 1 for best single-threaded latency.
        .shards(std::num::NonZeroUsize::new(1).expect("1 is nonzero"))
        // Batch ingest can fan its assignment probes out across worker
        // threads (probe-then-commit; output identical to the serial
        // loop at any count — see the README's "Threading model"). Two
        // threads here so the quickstart exercises the parallel path;
        // `EngineStats::probe_tasks` / `probe_revalidations` meter it.
        .ingest_threads(std::num::NonZeroUsize::new(2).expect("2 is nonzero"))
        .build()
        .expect("valid quickstart configuration");
    let mut engine = EdmStream::new(cfg, Euclidean);

    // Phase 1: two stationary clusters, ingested as one batch.
    let mut t = 0.0;
    let tick = |t: &mut f64| {
        *t += 0.01;
        *t
    };
    let batch: Vec<(DenseVector, f64)> = (0..1_500)
        .map(|i| {
            let x = if i % 2 == 0 { 0.0 } else { 10.0 };
            let jitter = (i % 7) as f64 * 0.1;
            (DenseVector::from([x + jitter, jitter * 0.5]), tick(&mut t))
        })
        .collect();
    engine.insert_batch(&batch);
    let snap = engine.snapshot(t);
    println!(
        "after two blobs:                 {} clusters (tau = {:.2})",
        snap.n_clusters(),
        snap.tau()
    );

    // Phase 2: a third cluster emerges somewhere new.
    for i in 0..1_000 {
        let jitter = (i % 7) as f64 * 0.1;
        engine.insert(&DenseVector::from([5.0 + jitter, 8.0 + jitter * 0.3]), tick(&mut t));
    }
    println!("after a new region:              {} clusters", engine.snapshot(t).n_clusters());

    // Phase 3: the right blob's source dries up; only the left blob and
    // the new region keep producing. The right cluster decays through the
    // density threshold, moves to the outlier reservoir, and disappears.
    for i in 0..5_000 {
        let jitter = (i % 7) as f64 * 0.1;
        let p = if i % 2 == 0 {
            DenseVector::from([jitter, jitter * 0.5])
        } else {
            DenseVector::from([5.0 + jitter, 8.0 + jitter * 0.3])
        };
        engine.insert(&p, tick(&mut t));
    }
    // A snapshot is an owned, frozen view: queries keep answering from it
    // even while the engine moves on.
    let snap = engine.snapshot(t);
    println!("after the right source dries up: {} clusters", snap.n_clusters());

    // Where does a fresh point belong?
    for probe in [
        DenseVector::from([5.2, 8.1]),   // inside the new region
        DenseVector::from([10.2, 0.1]),  // the faded region
        DenseVector::from([42.0, 42.0]), // nowhere
    ] {
        match engine.cluster_of(&probe, t) {
            Some(id) => println!("probe {probe:?} -> cluster {id}"),
            None => println!("probe {probe:?} -> outlier"),
        }
    }

    // A late, out-of-order packet is rejected with a typed error instead
    // of corrupting the stream clock.
    let stale = engine.try_insert(&DenseVector::from([0.0, 0.0]), t - 5.0);
    println!("stale packet: {}", stale.unwrap_err());

    // Draining the evolution log consumes the whole story so far.
    let events = engine.take_events();
    let (mut em, mut di, mut sp, mut me, mut ad) = (0, 0, 0, 0, 0);
    for ev in &events {
        match ev.kind {
            EventKind::Emerge { .. } => em += 1,
            EventKind::Disappear { .. } => di += 1,
            EventKind::Split { .. } => sp += 1,
            EventKind::Merge { .. } => me += 1,
            EventKind::Adjust { .. } => ad += 1,
        }
    }
    println!("evolution events: {em} emerge, {di} disappear, {sp} split, {me} merge, {ad} adjust");
    assert!(engine.take_events().is_empty(), "second drain is empty");
    println!(
        "engine state: {} cells ({} active, {} in reservoir), {} points in {:.1} stream-seconds",
        snap.n_cells(),
        snap.active_cells(),
        snap.reservoir_cells(),
        snap.points(),
        t
    );
    // How much work the grid index saved: of all live cells the linear
    // scan would have touched per insert, what fraction was never probed.
    let stats = engine.stats();
    println!(
        "neighbor index: {} distances computed, {} cells skipped ({:.1}% pruned)",
        stats.index_probed,
        stats.index_pruned,
        100.0 * stats.index_prune_rate()
    );
    // The batch above went through the two-phase parallel path: probes
    // fanned out, commits serial, conflicts re-probed.
    println!(
        "parallel ingest: {} probes fanned out over {} batch(es), {} revalidated serially",
        stats.probe_tasks, stats.parallel_batches, stats.probe_revalidations
    );
}
