//! Cluster identity matching over the evolution-event history.
//!
//! The [`LineageGraph`] replays structural events ([`EventKind::Emerge`],
//! [`EventKind::Split`], [`EventKind::Merge`], [`EventKind::Disappear`])
//! into one node per cluster id ever observed. Because the registry never
//! reuses ids, the graph is append-only: a node is born exactly once and
//! ends at most once, which is what makes both lineage walks terminate —
//! ancestry steps through split parents (ids strictly decrease) and the
//! current-identity walk steps through merge survivors (each node ends at
//! most once, so the chain never revisits a node).

use std::collections::BTreeMap;

use edm_common::time::Timestamp;
use serde::{Deserialize, Serialize};

use crate::evolution::{ClusterId, Event, EventKind};

/// How a cluster came into existence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BirthKind {
    /// Emerged with no predecessor (`∅ → C`).
    Emerged,
    /// Broke off an existing cluster in a split.
    SplitFrom {
        /// The cluster it split from (which kept its id in the largest
        /// fragment).
        parent: ClusterId,
    },
}

/// How a cluster's identity ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EndKind {
    /// Faded away with no successor (`C → ∅`).
    Disappeared,
    /// Was absorbed in a merge; its members live on under the survivor's
    /// id.
    MergedInto {
        /// The surviving cluster.
        survivor: ClusterId,
    },
}

/// The end of a cluster's identity, timestamped.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterEnd {
    /// Stream time the identity ended.
    pub t: Timestamp,
    /// How it ended.
    pub kind: EndKind,
}

/// One cluster's provenance node in the [`LineageGraph`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LineageNode {
    /// The cluster id this node describes.
    pub cluster: ClusterId,
    /// Stream time of birth.
    pub born: Timestamp,
    /// How it was born.
    pub birth: BirthKind,
    /// How (and when) its identity ended; `None` while it lives.
    pub end: Option<ClusterEnd>,
}

impl LineageNode {
    /// True while the cluster's identity has not ended.
    pub fn is_alive(&self) -> bool {
        self.end.is_none()
    }
}

/// A resolved lineage answer: where a cluster came from and where its
/// identity went.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lineage {
    /// The queried cluster.
    pub cluster: ClusterId,
    /// The id its members answer to *today*: the queried id itself while
    /// it lives, else the end of its transitive merge chain (which may
    /// itself be dead — check [`Lineage::alive`]).
    pub current: ClusterId,
    /// True when [`Lineage::current`] is a live cluster.
    pub alive: bool,
    /// Ancestry chain, starting at the queried cluster and stepping
    /// through split parents until a cluster that [`BirthKind::Emerged`]
    /// (or whose parent predates the tracked history). Always non-empty;
    /// `ancestry[0].cluster == cluster`.
    pub ancestry: Vec<LineageNode>,
    /// The merge hops from the queried cluster to [`Lineage::current`],
    /// oldest first; empty when the queried cluster still owns its
    /// identity.
    pub absorbed_into: Vec<ClusterId>,
}

impl Lineage {
    /// The cluster the queried one originally emerged from (the far end
    /// of the ancestry chain).
    pub fn progenitor(&self) -> ClusterId {
        self.ancestry.last().expect("ancestry is never empty").cluster
    }
}

/// Replayed provenance of every cluster id ever observed.
///
/// Grows by one small node per cluster ever created; for unbounded
/// streams with heavy churn, treat it as an operational log to be
/// inspected, not an index to be held forever.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LineageGraph {
    nodes: BTreeMap<ClusterId, LineageNode>,
}

impl LineageGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a graph by replaying `events` in order — the brute-force
    /// path consumers (and the provenance test suite) can run against a
    /// raw event log.
    pub fn from_events<'a>(events: impl IntoIterator<Item = &'a Event>) -> Self {
        let mut g = Self::new();
        for e in events {
            g.apply(e);
        }
        g
    }

    /// Number of cluster ids ever observed.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no cluster was ever observed.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The provenance node of `cluster`, if it was ever observed.
    pub fn node(&self, cluster: ClusterId) -> Option<&LineageNode> {
        self.nodes.get(&cluster)
    }

    /// All nodes, in ascending cluster-id order (which is also birth
    /// order — ids are handed out monotonically).
    pub fn nodes(&self) -> impl Iterator<Item = &LineageNode> {
        self.nodes.values()
    }

    /// Folds one event into the graph. [`EventKind::Adjust`] changes no
    /// identity and is ignored.
    pub fn apply(&mut self, event: &Event) {
        let t = event.t;
        match &event.kind {
            EventKind::Emerge { cluster } => {
                self.nodes.entry(*cluster).or_insert(LineageNode {
                    cluster: *cluster,
                    born: t,
                    birth: BirthKind::Emerged,
                    end: None,
                });
            }
            EventKind::Split { from, into } => {
                for &c in into {
                    self.nodes.entry(c).or_insert(LineageNode {
                        cluster: c,
                        born: t,
                        birth: BirthKind::SplitFrom { parent: *from },
                        end: None,
                    });
                }
            }
            EventKind::Merge { from, into } => {
                for &c in from {
                    if let Some(n) = self.nodes.get_mut(&c) {
                        if n.end.is_none() {
                            n.end = Some(ClusterEnd {
                                t,
                                kind: EndKind::MergedInto { survivor: *into },
                            });
                        }
                    }
                }
            }
            EventKind::Disappear { cluster } => {
                if let Some(n) = self.nodes.get_mut(cluster) {
                    if n.end.is_none() {
                        n.end = Some(ClusterEnd { t, kind: EndKind::Disappeared });
                    }
                }
            }
            EventKind::Adjust { .. } => {}
        }
    }

    /// Resolves the full lineage of `cluster`: its ancestry through split
    /// parents and its current identity through the transitive merge
    /// chain. `None` when the id was never observed.
    pub fn lineage_of(&self, cluster: ClusterId) -> Option<Lineage> {
        let start = self.nodes.get(&cluster)?;

        // Ancestry: step through split parents. Fresh ids are handed out
        // monotonically, so a parent id is always smaller than its
        // child's — the walk strictly descends and must terminate.
        let mut ancestry = vec![start.clone()];
        let mut at = start;
        while let BirthKind::SplitFrom { parent } = at.birth {
            debug_assert!(parent < at.cluster, "split parent must predate the fragment");
            match self.nodes.get(&parent) {
                Some(p) if parent < at.cluster => {
                    ancestry.push(p.clone());
                    at = p;
                }
                // Parent unknown (predates history) or inconsistent:
                // stop at the last known ancestor.
                _ => break,
            }
        }

        // Current identity: follow merge survivors forward. Each node
        // ends at most once, so the chain visits each node at most once;
        // the visited set guards the walk against a (never expected)
        // corrupt cycle anyway.
        let mut absorbed_into = Vec::new();
        let mut visited = std::collections::BTreeSet::new();
        let mut cur = start;
        visited.insert(cur.cluster);
        while let Some(ClusterEnd { kind: EndKind::MergedInto { survivor }, .. }) = cur.end {
            if !visited.insert(survivor) {
                break;
            }
            absorbed_into.push(survivor);
            match self.nodes.get(&survivor) {
                Some(n) => cur = n,
                None => break,
            }
        }
        let alive = absorbed_into.last().map_or(start.end.is_none(), |&last| {
            self.nodes.get(&last).is_some_and(|n| n.end.is_none())
        });

        Some(Lineage { cluster, current: cur.cluster, alive, ancestry, absorbed_into })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: f64, kind: EventKind) -> Event {
        Event { t, kind }
    }

    #[test]
    fn emerge_then_query_is_a_trivial_lineage() {
        let g = LineageGraph::from_events(&[ev(1.0, EventKind::Emerge { cluster: 3 })]);
        let l = g.lineage_of(3).unwrap();
        assert_eq!(l.current, 3);
        assert!(l.alive);
        assert_eq!(l.ancestry.len(), 1);
        assert_eq!(l.progenitor(), 3);
        assert!(l.absorbed_into.is_empty());
        assert!(g.lineage_of(99).is_none());
    }

    #[test]
    fn split_ancestry_walks_back_to_the_emerged_root() {
        let g = LineageGraph::from_events(&[
            ev(0.0, EventKind::Emerge { cluster: 0 }),
            ev(1.0, EventKind::Split { from: 0, into: vec![1, 2] }),
            ev(2.0, EventKind::Split { from: 2, into: vec![3] }),
        ]);
        let l = g.lineage_of(3).unwrap();
        let chain: Vec<ClusterId> = l.ancestry.iter().map(|n| n.cluster).collect();
        assert_eq!(chain, vec![3, 2, 0]);
        assert_eq!(l.progenitor(), 0);
        assert!(l.alive);
        assert_eq!(g.lineage_of(1).unwrap().progenitor(), 0);
    }

    #[test]
    fn merge_chain_resolves_to_the_transitive_survivor() {
        let g = LineageGraph::from_events(&[
            ev(0.0, EventKind::Emerge { cluster: 0 }),
            ev(0.0, EventKind::Emerge { cluster: 1 }),
            ev(0.0, EventKind::Emerge { cluster: 2 }),
            ev(1.0, EventKind::Merge { from: vec![0], into: 1 }),
            ev(2.0, EventKind::Merge { from: vec![1], into: 2 }),
        ]);
        let l = g.lineage_of(0).unwrap();
        assert_eq!(l.current, 2, "yesterday's #0 answers to #2 today");
        assert_eq!(l.absorbed_into, vec![1, 2]);
        assert!(l.alive);
        // The survivor's own lineage is trivial.
        assert_eq!(g.lineage_of(2).unwrap().absorbed_into, Vec::<ClusterId>::new());
    }

    #[test]
    fn disappeared_cluster_is_dead_and_keeps_its_identity() {
        let g = LineageGraph::from_events(&[
            ev(0.0, EventKind::Emerge { cluster: 5 }),
            ev(3.0, EventKind::Disappear { cluster: 5 }),
        ]);
        let l = g.lineage_of(5).unwrap();
        assert_eq!(l.current, 5);
        assert!(!l.alive);
        assert_eq!(g.node(5).unwrap().end, Some(ClusterEnd { t: 3.0, kind: EndKind::Disappeared }));
    }

    #[test]
    fn merge_into_a_cluster_that_later_dies_is_dead() {
        let g = LineageGraph::from_events(&[
            ev(0.0, EventKind::Emerge { cluster: 0 }),
            ev(0.0, EventKind::Emerge { cluster: 1 }),
            ev(1.0, EventKind::Merge { from: vec![0], into: 1 }),
            ev(2.0, EventKind::Disappear { cluster: 1 }),
        ]);
        let l = g.lineage_of(0).unwrap();
        assert_eq!(l.current, 1);
        assert!(!l.alive);
    }

    #[test]
    fn adjust_events_change_no_identity() {
        let mut g = LineageGraph::from_events(&[ev(0.0, EventKind::Emerge { cluster: 0 })]);
        g.apply(&ev(
            1.0,
            EventKind::Adjust {
                kind: crate::evolution::AdjustKind::OutliersJoined,
                cluster: 0,
                cells: 3,
            },
        ));
        assert_eq!(g.len(), 1);
        assert!(g.lineage_of(0).unwrap().alive);
    }

    #[test]
    fn split_then_merge_combines_both_walks() {
        // 0 splits off 1; later 1 is absorbed back into 0.
        let g = LineageGraph::from_events(&[
            ev(0.0, EventKind::Emerge { cluster: 0 }),
            ev(1.0, EventKind::Split { from: 0, into: vec![1] }),
            ev(2.0, EventKind::Merge { from: vec![1], into: 0 }),
        ]);
        let l = g.lineage_of(1).unwrap();
        assert_eq!(l.progenitor(), 0, "ancestry through the split parent");
        assert_eq!(l.current, 0, "identity through the merge survivor");
        assert!(l.alive);
    }
}
