//! Dataset catalog and algorithm factory.
//!
//! Centralizes the per-dataset parameters of the paper's §6.1 (Table 2's
//! cell radius `r`, the decay alignment `a^λ = 0.998`, `β = 0.0021`) and
//! builds ready-to-run engines so each experiment uses identical
//! configurations.

use edm_baselines::{
    DStream, DStreamConfig, DbStream, DbStreamConfig, DenStream, DenStreamConfig, MrStream,
    MrStreamConfig,
};
use edm_common::decay::DecayModel;
use edm_common::metric::Euclidean;
use edm_common::point::DenseVector;
use edm_core::{EdmConfig, EdmStream, TauMode};
use edm_data::clusterer::StreamClusterer;
use edm_data::gen::{covertype, hds, kdd, nads, pamap2, sds};
use edm_data::stream::LabeledStream;

/// The six datasets of Table 2 (HDS carries its dimensionality).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetId {
    /// 2-D synthetic evolution script (20k × 2).
    Sds,
    /// High-dimensional synthetic (100k × dim, 20 clusters).
    Hds(usize),
    /// KDDCUP99 surrogate (494,021 × 34, 23 classes).
    Kdd,
    /// CoverType surrogate (581,012 × 54, 7 classes).
    CoverType,
    /// PAMAP2 surrogate (447,000 × 51, 13 classes).
    Pamap2,
}

impl DatasetId {
    /// Paper-scale instance count (Table 2).
    pub fn paper_n(&self) -> usize {
        match self {
            DatasetId::Sds => 20_000,
            DatasetId::Hds(_) => 100_000,
            DatasetId::Kdd => 494_021,
            DatasetId::CoverType => 581_012,
            DatasetId::Pamap2 => 447_000,
        }
    }

    /// Dataset name as printed in the paper.
    pub fn name(&self) -> String {
        match self {
            DatasetId::Sds => "SDS".into(),
            DatasetId::Hds(d) => format!("HDS-{d}d"),
            DatasetId::Kdd => "KDDCUP99".into(),
            DatasetId::CoverType => "CoverType".into(),
            DatasetId::Pamap2 => "PAMAP2".into(),
        }
    }
}

/// A materialized dataset plus the EDMStream configuration tuned for it.
pub struct Dataset {
    /// Which dataset this is.
    pub id: DatasetId,
    /// The labeled stream (scaled).
    pub stream: LabeledStream<DenseVector>,
    /// EDMStream configuration (paper §6.1 defaults).
    pub edm: EdmConfig,
}

/// Builds a vector dataset at `scale` (fraction of the paper-scale length)
/// with arrival rate `rate` points/sec.
pub fn load(id: DatasetId, scale: f64, rate: f64) -> Dataset {
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0,1]");
    let n = ((id.paper_n() as f64 * scale) as usize).max(2_000);
    let stream = match id {
        DatasetId::Sds => sds::generate(&sds::SdsConfig { n, rate, ..Default::default() }),
        DatasetId::Hds(dim) => {
            let mut cfg = hds::HdsConfig::paper(dim);
            cfg.n = n;
            cfg.rate = rate;
            hds::generate(&cfg)
        }
        DatasetId::Kdd => kdd::generate(&kdd::KddConfig { n, rate, ..Default::default() }),
        DatasetId::CoverType => {
            covertype::generate(&covertype::CoverTypeConfig { n, rate, ..Default::default() })
        }
        DatasetId::Pamap2 => {
            pamap2::generate(&pamap2::Pamap2Config { n, rate, ..Default::default() })
        }
    };
    let edm = edm_config(id, stream.default_r, rate);
    Dataset { id, stream, edm }
}

/// EDMStream configuration for a dataset (paper §6.1: β = 0.0021,
/// a^λ = 0.998 for the long real-dataset streams).
///
/// SDS is special-cased: its evolution script plays out in 20 seconds
/// (clusters must visibly fade within ~4 s per Fig 6's palette), which is
/// only consistent with a much faster decay than the 346-second half-life
/// of the default model. We use λ = 200 (half-life ≈ 1.7 s) with β chosen
/// so a cell must sustain ≈ 10 pt/s to stay active, and a 5-second
/// recycling horizon (the Theorem 3 formula degenerates for large λ — see
/// `EdmConfig::recycle_horizon`).
pub fn edm_config(id: DatasetId, r: f64, rate: f64) -> EdmConfig {
    let builder = EdmConfig::builder(r).rate(rate).init_points(1_000);
    let builder = match id {
        DatasetId::Sds => builder
            .decay(DecayModel::new(0.998, 200.0))
            .beta(3e-3)
            .recycle_horizon(5.0)
            .tau_every(128),
        _ => builder.beta(0.0021),
    };
    builder.build().expect("catalog config is valid")
}

/// EDMStream configuration for the NADS news stream: Jaccard space, news
/// decay (λ = 60 → freshness half-life ≈ 5.8 s ≈ one calendar day at the
/// default 6 s/day compression — yesterday's headlines carry half the
/// weight), β low enough that an active story needs to sustain roughly a
/// third of a headline per second.
pub fn nads_edm_config(cfg: &nads::NadsConfig) -> EdmConfig {
    let rate = cfg.n as f64 / (nads::DAYS * cfg.seconds_per_day);
    let decay = DecayModel::new(0.998, 60.0);
    EdmConfig::builder(0.4)
        .decay(decay)
        .rate(rate)
        // Threshold ≈ 3 headlines of steady mass.
        .beta(3.0 * (1.0 - decay.retention()) / rate)
        .init_points(500)
        // Stories absorb headlines roughly once a second; the Theorem 3
        // formula would recycle them faster than that (see EdmConfig docs).
        .recycle_horizon(5.0 * cfg.seconds_per_day)
        // Jaccard distances are bimodal (same-topic story links ≈ 0.6,
        // cross-topic links ≥ 0.9) and the modes drift as stories rotate, so
        // the user-picked τ between the modes is kept static — the paper's
        // adaptive-τ demonstration lives on SDS (Table 4), not on NADS.
        .tau_mode(TauMode::Static(0.75))
        .build()
        .expect("NADS config is valid")
}

/// All five engines for a vector dataset, boxed behind the common trait.
/// `offline_every` is the baselines' periodic re-cluster cadence.
pub fn all_algorithms(
    ds: &Dataset,
    offline_every: u64,
) -> Vec<Box<dyn StreamClusterer<DenseVector>>> {
    let r = ds.stream.default_r;
    vec![
        Box::new(EdmStream::new(ds.edm.clone(), Euclidean)),
        Box::new(DStream::new(DStreamConfig { offline_every, ..DStreamConfig::new(r) })),
        Box::new(DenStream::new(DenStreamConfig {
            offline_every,
            prune_every: offline_every,
            ..DenStreamConfig::new(r)
        })),
        Box::new(DbStream::new(DbStreamConfig {
            offline_every,
            gap: offline_every,
            ..DbStreamConfig::new(r)
        })),
        Box::new(MrStream::new(MrStreamConfig {
            offline_every,
            prune_every: offline_every,
            ..MrStreamConfig::new(r)
        })),
    ]
}

/// Baseline-only subset (paper Fig 9 omits MR-Stream, which cannot keep up
/// at 1k pt/s).
pub fn fig9_algorithms(
    ds: &Dataset,
    offline_every: u64,
) -> Vec<Box<dyn StreamClusterer<DenseVector>>> {
    let mut v = all_algorithms(ds, offline_every);
    v.pop(); // drop MR-Stream
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_scales_each_dataset() {
        let ds = load(DatasetId::Sds, 0.2, 1_000.0);
        assert_eq!(ds.stream.len(), 4_000);
        assert_eq!(ds.stream.default_r, 0.3);
        assert_eq!(ds.edm.r(), 0.3);
    }

    #[test]
    fn minimum_size_is_enforced() {
        let ds = load(DatasetId::Kdd, 0.001, 1_000.0);
        assert_eq!(ds.stream.len(), 2_000);
    }

    #[test]
    fn algorithm_factory_builds_five() {
        let ds = load(DatasetId::Sds, 0.1, 1_000.0);
        let algos = all_algorithms(&ds, 500);
        let names: Vec<&str> = algos.iter().map(|a| a.name()).collect();
        assert_eq!(names, vec!["EDMStream", "D-Stream", "DenStream", "DBSTREAM", "MR-Stream"]);
        assert_eq!(fig9_algorithms(&ds, 500).len(), 4);
    }

    #[test]
    fn nads_config_is_valid() {
        let cfg = nads::NadsConfig { n: 10_000, ..Default::default() };
        let e = nads_edm_config(&cfg);
        assert!(e.active_threshold() > 1.0);
    }
}
