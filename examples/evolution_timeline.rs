//! Replay of the paper's Fig 6/7 story: the scripted SDS stream, with a
//! per-second cluster-count timeline and the full evolution narrative
//! (approach → merge → emerge → disappear → split).
//!
//! ```text
//! cargo run --release --example evolution_timeline
//! ```

use edmstream::data::gen::sds::{self, SdsConfig};
use edmstream::{DecayModel, DenseVector, EdmConfig, EdmStream, Euclidean, EventKind};

fn main() {
    let stream = sds::generate(&SdsConfig::default());
    println!("SDS: {} points over {:.0} seconds\n", stream.len(), stream.duration());

    // SDS plays out in 20 s, so it needs a fast-forgetting decay model
    // (half-life ≈ 1.7 s); see DESIGN.md §5.
    let cfg = EdmConfig::builder(0.3)
        .decay(DecayModel::new(0.998, 200.0))
        .beta(3e-3)
        .rate(1_000.0)
        .recycle_horizon(5.0)
        .tau_every(128)
        .build()
        .expect("valid SDS configuration");
    let mut engine: EdmStream<DenseVector, Euclidean> = EdmStream::new(cfg, Euclidean);

    let mut next = 1.0;
    for p in stream.iter() {
        engine.insert(&p.payload, p.ts);
        // Drain events as they happen: each is delivered exactly once.
        for ev in engine.take_events() {
            match &ev.kind {
                EventKind::Emerge { cluster } => {
                    println!("  {:>5.2}s  + cluster {cluster} emerged", ev.t)
                }
                EventKind::Disappear { cluster } => {
                    println!("  {:>5.2}s  - cluster {cluster} disappeared", ev.t)
                }
                EventKind::Split { from, into } => {
                    println!("  {:>5.2}s  cluster {from} split off {into:?}", ev.t)
                }
                EventKind::Merge { from, into } => {
                    println!("  {:>5.2}s  clusters {from:?} merged into {into}", ev.t)
                }
                EventKind::Adjust { .. } => {}
            }
        }
        if p.ts >= next {
            // `publish_snapshot` (not `snapshot`) seals a generation, so
            // the digest queries below have one record per second.
            let snap = engine.publish_snapshot(p.ts);
            let bar = "#".repeat(snap.n_clusters());
            println!(
                "t={:>2.0}s  clusters {:<3} {bar}  (tau {:.2}, {} active cells)",
                next,
                snap.n_clusters(),
                snap.tau(),
                snap.active_cells()
            );
            next += 1.0;
        }
    }
    println!("\n(the script: two clusters approach and merge ~8-9s; a new one");
    println!(" emerges ~12-13s; the old one dies ~14-17s; the survivor splits)");

    // ---- evolution queries over the finished run ----
    // The digest answers "what changed since generation G" in one struct:
    // ask it across the whole run, and across just the second half.
    let (oldest, latest) = engine.digest_window().generations().expect("generations sealed");
    let whole = engine.digest_since(oldest).expect("window held");
    println!(
        "\ndigest g{oldest}→g{latest}: {} births, {} deaths, {} merges, {} splits, \
         {} adjustments",
        whole.births.len(),
        whole.deaths.len(),
        whole.merges.len(),
        whole.splits.len(),
        whole.adjustments
    );
    let mid = oldest + (latest - oldest) / 2;
    let half = engine.digest_between(mid, latest).expect("window held");
    println!("digest g{mid}→g{latest}: births {:?}, deaths {:?}", half.births, half.deaths);

    // Lineage resolves identity through merges and splits: pick the first
    // merge of the run and ask where the absorbed cluster's points answer
    // to today.
    if let Some(merge) = whole.merges.first() {
        let victim = merge.from[0];
        let lineage = engine.lineage_of(victim).expect("lossless run");
        println!(
            "\ncluster {victim} was absorbed at t={:.2}s; its identity chain {:?} \
             resolves to cluster {} ({})",
            merge.t,
            lineage.absorbed_into,
            lineage.current,
            if lineage.alive { "alive" } else { "since died" }
        );
        // The rolling summary outlives the cluster itself (for as long as
        // its era stays inside the digest history).
        if let Some(summary) = engine.summary_of(victim) {
            println!(
                "its last summary: mass {:.1}, {} cells, centroid {:?}",
                summary.mass, summary.cells, summary.centroid
            );
        }
    }
    if let Some(split) = whole.splits.first() {
        let fragment = split.into[0];
        let lineage = engine.lineage_of(fragment).expect("lossless run");
        println!(
            "cluster {fragment} split off at t={:.2}s; its ancestry runs back to \
             cluster {} via {} hop(s)",
            split.t,
            lineage.progenitor(),
            lineage.ancestry.len() - 1
        );
    }
}
