//! Neighbor indexes over the cell slab (paper §4.1, assignment step).
//!
//! Every per-point operation of the engine starts with a neighbor
//! question — *which cell seed is within `r` of this point?* (assignment,
//! `cluster_of`) or *which is the nearest cell satisfying a predicate?*
//! (dependency recomputation). Answering by scanning the whole slab makes
//! insert cost grow linearly with cell count, which defeats the paper's
//! cheap-maintenance claim as soon as the outlier reservoir grows. This
//! module abstracts the question behind [`NeighborIndex`] and provides
//! four implementations:
//!
//! * [`UniformGrid`] — seeds quantized into a uniform grid of bucket side
//!   `r` (the cluster-cell radius), so an assignment query probes only the
//!   3^d neighborhood shell of the query's bucket, and nearest-matching
//!   queries expand Chebyshev shells outward until the bucket geometry
//!   proves no closer cell can exist. Sound for payloads exposing
//!   coordinates ([`edm_common::point::GridCoords`]) under any metric that
//!   dominates per-axis coordinate differences (all Minkowski metrics).
//!   Payloads without coordinates transparently fall back to scanning.
//!   When the bucket side is the engine's default (not user-pinned), the
//!   grid auto-tunes it: mean occupancy leaving a target band triggers an
//!   O(n) rebuild at a refined/coarsened side (counted in
//!   [`crate::EngineStats::grid_rebuilds`]).
//! * [`ShardedGrid`] — `S` independent [`UniformGrid`]s, each owning the
//!   seeds whose coarse grid key hashes to it. Structural updates touch
//!   one shard; queries combine per-shard winners. The isolation seam for
//!   per-shard locking/threading (configured via
//!   [`crate::EdmConfigBuilder::shards`]).
//! * [`CoverTree`] — a best-first metric tree over cell seeds, pruning
//!   whole subtrees through triangle-inequality covering-radius bounds.
//!   Needs no coordinates at all — only the metric axioms (the
//!   [`edm_common::metric::Metric::is_metric`] opt-in) — which makes it
//!   the index of choice for high-dimensional payloads, where uniform
//!   buckets degenerate into occupied-bucket sweeps, and for
//!   coordinate-less payloads like token sets, which the grid can only
//!   scan.
//! * [`LinearScan`] — the exact full scan, as a fallback for arbitrary
//!   metric spaces and as the reference implementation the property suite
//!   compares the other backends against.
//!
//! All are *exact*: they return the same nearest cell (identical
//! distance-then-id tie-breaking) the brute-force scan would, so switching
//! index kinds never changes clustering output — only the number of
//! distance computations, which the engine counts in
//! [`crate::EngineStats::index_probed`] / [`crate::EngineStats::index_pruned`].

mod cover;
mod grid;
mod linear;
mod sharded;

pub use cover::CoverTree;
pub use grid::UniformGrid;
pub use linear::LinearScan;
pub use sharded::ShardedGrid;

use edm_common::metric::Metric;
use edm_common::point::GridCoords;
use serde::{Deserialize, Serialize};

use crate::cell::{Cell, CellId};
use crate::slab::CellSlab;

/// Which neighbor index the engine builds — the
/// [`crate::EdmConfigBuilder::neighbor_index`] knob.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NeighborIndexKind {
    /// Brute-force full scan over the slab. Exact for every metric space;
    /// insert cost grows linearly with cell count.
    LinearScan,
    /// Uniform grid over cell seeds. Exact whenever the payload exposes
    /// coordinates and the metric dominates per-axis coordinate
    /// differences (see [`edm_common::point::GridCoords`]); payloads
    /// without coordinates degrade to a linear scan inside the grid, and
    /// the engine downgrades the whole index to [`LinearScan`] for
    /// metrics that do not assert the bound via
    /// [`edm_common::metric::Metric::dominates_coordinate_axes`] — a
    /// custom metric can never be silently mis-pruned.
    Grid {
        /// Bucket side length; `None` uses the cluster-cell radius `r`,
        /// which makes the 3^d neighborhood shell cover every assignment
        /// query. Must be positive and finite when given.
        side: Option<f64>,
    },
    /// Best-first metric tree over cell seeds ([`CoverTree`]). Exact for
    /// any true metric — the engine downgrades it to [`LinearScan`]
    /// unless the metric vouches for the triangle inequality via
    /// [`edm_common::metric::Metric::is_metric`]. Unlike the grid it
    /// needs no coordinate embedding, so it indexes token sets and other
    /// coordinate-less payloads, and it keeps pruning in high dimensions
    /// where uniform buckets degenerate into occupied-bucket sweeps.
    CoverTree,
}

impl Default for NeighborIndexKind {
    fn default() -> Self {
        NeighborIndexKind::Grid { side: None }
    }
}

/// A spatial index over the live cells of a [`CellSlab`].
///
/// The engine keeps the index coherent with the slab: [`on_insert`] on
/// every cell birth, [`on_remove`] on every reservoir recycling. Cells
/// moving between the DP-Tree and the reservoir stay indexed — both can
/// absorb points — and queries that only concern active cells filter
/// through their predicate instead.
///
/// All query methods are **exact**: given the same slab they must return
/// the cell the brute-force scan would, breaking distance ties toward the
/// lower [`CellId`].
///
/// [`on_insert`]: NeighborIndex::on_insert
/// [`on_remove`]: NeighborIndex::on_remove
pub trait NeighborIndex<P> {
    /// Registers a freshly inserted cell. The cell is already live in
    /// `slab` (so `slab.get(id).seed` is `seed`), and `metric` is the
    /// engine's metric — metric-tree backends route the insertion through
    /// distance computations against seeds fetched from the slab;
    /// coordinate-quantizing backends ignore both.
    fn on_insert<M: Metric<P>>(&mut self, id: CellId, seed: &P, slab: &CellSlab<P>, metric: &M);

    /// Unregisters a cell removed from the slab (reservoir recycling).
    /// Called **after** `slab.remove(id)` — `seed` carries the removed
    /// cell's seed, while `slab` holds every still-live cell (metric-tree
    /// backends re-hang the removed node's orphans against it).
    fn on_remove<M: Metric<P>>(&mut self, id: CellId, seed: &P, slab: &CellSlab<P>, metric: &M);

    /// The nearest cell whose seed lies within `radius` of `q`, with its
    /// distance; `None` when no cell is that close. Calls `on_probe` once
    /// per distance actually computed, so callers can account probes and
    /// cache the exact distances (the engine stamps its scratch table,
    /// which feeds the Theorem 2 triangle filter for free).
    fn nearest_within<M: Metric<P>>(
        &self,
        q: &P,
        radius: f64,
        slab: &CellSlab<P>,
        metric: &M,
        on_probe: &mut dyn FnMut(CellId, f64),
    ) -> Option<(CellId, f64)>;

    /// The nearest cell satisfying `pred`, searched without a radius cap
    /// (dependency recomputation: nearest *denser active* cell). The
    /// predicate sees the candidate id and cell before any distance is
    /// computed.
    fn nearest_matching<M: Metric<P>>(
        &self,
        q: &P,
        slab: &CellSlab<P>,
        metric: &M,
        pred: &mut dyn FnMut(CellId, &Cell<P>) -> bool,
    ) -> Option<(CellId, f64)>;

    /// A sound lower bound on `metric.dist(q, seed)` that costs no metric
    /// evaluation; `0.0` when the index can prove nothing. Used by the
    /// engine to run the triangle filter on cells whose exact distance the
    /// assignment probe skipped.
    fn distance_lower_bound(&self, q: &P, seed: &P) -> f64;

    /// Whether a structural change at `changed` — a cell with that seed
    /// inserted into (or removed from) this index — could alter the result
    /// **or the probed set** of [`NeighborIndex::nearest_within`]`(q,
    /// radius, ..)`. The parallel batch committer asks this to decide
    /// which pre-computed assignment probes survive an earlier commit's
    /// cell birth; a stale probe is simply redone serially, so the method
    /// affects only throughput, never output.
    ///
    /// Implementations must be **conservative**: return `true` whenever
    /// the probe cannot be proven untouched. The default claims every
    /// change conflicts — exact for the linear scan, which probes every
    /// live cell.
    fn probe_conflicts(&self, _q: &P, _changed: &P, _radius: f64) -> bool {
        true
    }

    /// Periodic self-maintenance hook, called from the engine's
    /// maintenance cadence: indexes that tune their own layout (grid
    /// bucket-side auto-tuning) rebuild here and return the number of
    /// rebuilds performed. Stateless indexes keep the default no-op.
    fn maintain(&mut self, _slab: &CellSlab<P>) -> u64 {
        0
    }

    /// Verifies that the index holds exactly the live slab cells, each
    /// filed where its seed says it belongs, and that every internal
    /// pruning bound is sound against the metric (test support).
    fn check_coherence<M: Metric<P>>(&self, slab: &CellSlab<P>, metric: &M) -> Result<(), String>;
}

/// Chebyshev (L∞) distance between two payloads' coordinate embeddings —
/// `0.0` when either has none or the dimensionalities disagree. A sound
/// lower bound on any metric that dominates per-axis coordinate
/// differences; shared by the grid and cover-tree
/// [`NeighborIndex::distance_lower_bound`] implementations.
pub(crate) fn chebyshev_lower_bound<P: GridCoords>(q: &P, seed: &P) -> f64 {
    match (q.grid_coords(), seed.grid_coords()) {
        (Some(a), Some(b)) if a.len() == b.len() => {
            a.iter().zip(b.iter()).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
        }
        _ => 0.0,
    }
}

/// Strict "closer" order used by every index: nearer wins, equal distances
/// break toward the lower cell id. Total, so visitation order never
/// changes the winner — the property that keeps all index kinds
/// observationally identical.
#[inline]
pub(crate) fn closer(d: f64, id: CellId, best: Option<(CellId, f64)>) -> bool {
    match best {
        Some((bid, bd)) => d < bd || (d == bd && id < bid),
        None => true,
    }
}

/// The engine's concrete index: static dispatch over the four
/// implementations (no boxing on the hot path).
#[derive(Debug, Clone)]
pub enum CellIndex {
    /// Brute-force fallback.
    Linear(LinearScan),
    /// Uniform grid over seeds.
    Grid(UniformGrid),
    /// Hash-sharded uniform grids (`shards > 1`).
    Sharded(ShardedGrid),
    /// Best-first metric tree over seeds.
    Cover(CoverTree),
}

impl CellIndex {
    /// Builds the index a configuration asks for; `r` is the cluster-cell
    /// radius (the grid's default bucket side), `shards` the configured
    /// shard count (1 = a single unsharded grid; ignored by the cover
    /// tree and the linear scan, which have no shard structure), and
    /// `axis_bound` whether the engine's metric dominates per-axis
    /// coordinate differences (lets the cover tree hand out Chebyshev
    /// [`NeighborIndex::distance_lower_bound`]s; the grid kinds are only
    /// ever constructed when it holds). A defaulted side (`side: None`)
    /// enables occupancy auto-tuning — the side is the engine's guess,
    /// free to refine; an explicit side is pinned.
    ///
    /// A degenerate side (zero, negative, non-finite) or shard count of
    /// zero degrades to the linear scan instead of panicking: the builder
    /// rejects such configs with typed [`crate::ConfigError`]s, so this
    /// only triggers for configs smuggled past validation
    /// (deserialization, FFI), where the engine's contract is
    /// debug-assert-only.
    pub fn from_config(kind: NeighborIndexKind, r: f64, shards: usize, axis_bound: bool) -> Self {
        match kind {
            NeighborIndexKind::LinearScan => CellIndex::Linear(LinearScan),
            NeighborIndexKind::CoverTree => CellIndex::Cover(CoverTree::new(axis_bound)),
            NeighborIndexKind::Grid { side } => {
                let auto_tune = side.is_none();
                let side = side.unwrap_or(r);
                if !side.is_finite() || side <= 0.0 || shards == 0 {
                    CellIndex::Linear(LinearScan)
                } else if shards == 1 {
                    if auto_tune {
                        CellIndex::Grid(UniformGrid::auto_tuned(side))
                    } else {
                        CellIndex::Grid(UniformGrid::new(side))
                    }
                } else {
                    CellIndex::Sharded(ShardedGrid::new(side, shards, auto_tune))
                }
            }
        }
    }

    /// Fig-style label of the active implementation.
    pub fn label(&self) -> &'static str {
        match self {
            CellIndex::Linear(_) => "linear",
            CellIndex::Grid(_) => "grid",
            CellIndex::Sharded(_) => "sharded-grid",
            CellIndex::Cover(_) => "cover-tree",
        }
    }

    /// Live cells held per shard: one entry per shard of the sharded
    /// grid, a single entry for the unsharded grid and the cover tree,
    /// empty for the linear scan (the slab itself is the only
    /// structure). Written into `out` so the engine's per-insert refresh
    /// never reallocates.
    pub fn shard_occupancy_into(&self, out: &mut Vec<u64>) {
        out.clear();
        match self {
            CellIndex::Linear(_) => {}
            CellIndex::Grid(g) => out.push(g.indexed_len() as u64),
            CellIndex::Sharded(s) => out.extend(s.occupancy_iter()),
            CellIndex::Cover(c) => out.push(c.len() as u64),
        }
    }
}

impl<P: GridCoords> NeighborIndex<P> for CellIndex {
    fn on_insert<M: Metric<P>>(&mut self, id: CellId, seed: &P, slab: &CellSlab<P>, metric: &M) {
        match self {
            CellIndex::Linear(ix) => ix.on_insert(id, seed, slab, metric),
            CellIndex::Grid(ix) => ix.on_insert(id, seed, slab, metric),
            CellIndex::Sharded(ix) => ix.on_insert(id, seed, slab, metric),
            CellIndex::Cover(ix) => ix.on_insert(id, seed, slab, metric),
        }
    }

    fn on_remove<M: Metric<P>>(&mut self, id: CellId, seed: &P, slab: &CellSlab<P>, metric: &M) {
        match self {
            CellIndex::Linear(ix) => ix.on_remove(id, seed, slab, metric),
            CellIndex::Grid(ix) => ix.on_remove(id, seed, slab, metric),
            CellIndex::Sharded(ix) => ix.on_remove(id, seed, slab, metric),
            CellIndex::Cover(ix) => ix.on_remove(id, seed, slab, metric),
        }
    }

    fn nearest_within<M: Metric<P>>(
        &self,
        q: &P,
        radius: f64,
        slab: &CellSlab<P>,
        metric: &M,
        on_probe: &mut dyn FnMut(CellId, f64),
    ) -> Option<(CellId, f64)> {
        match self {
            CellIndex::Linear(ix) => ix.nearest_within(q, radius, slab, metric, on_probe),
            CellIndex::Grid(ix) => ix.nearest_within(q, radius, slab, metric, on_probe),
            CellIndex::Sharded(ix) => ix.nearest_within(q, radius, slab, metric, on_probe),
            CellIndex::Cover(ix) => ix.nearest_within(q, radius, slab, metric, on_probe),
        }
    }

    fn nearest_matching<M: Metric<P>>(
        &self,
        q: &P,
        slab: &CellSlab<P>,
        metric: &M,
        pred: &mut dyn FnMut(CellId, &Cell<P>) -> bool,
    ) -> Option<(CellId, f64)> {
        match self {
            CellIndex::Linear(ix) => ix.nearest_matching(q, slab, metric, pred),
            CellIndex::Grid(ix) => ix.nearest_matching(q, slab, metric, pred),
            CellIndex::Sharded(ix) => ix.nearest_matching(q, slab, metric, pred),
            CellIndex::Cover(ix) => ix.nearest_matching(q, slab, metric, pred),
        }
    }

    fn distance_lower_bound(&self, q: &P, seed: &P) -> f64 {
        match self {
            CellIndex::Linear(ix) => NeighborIndex::<P>::distance_lower_bound(ix, q, seed),
            CellIndex::Grid(ix) => NeighborIndex::<P>::distance_lower_bound(ix, q, seed),
            CellIndex::Sharded(ix) => NeighborIndex::<P>::distance_lower_bound(ix, q, seed),
            CellIndex::Cover(ix) => NeighborIndex::<P>::distance_lower_bound(ix, q, seed),
        }
    }

    fn probe_conflicts(&self, q: &P, changed: &P, radius: f64) -> bool {
        match self {
            CellIndex::Linear(ix) => NeighborIndex::<P>::probe_conflicts(ix, q, changed, radius),
            CellIndex::Grid(ix) => NeighborIndex::<P>::probe_conflicts(ix, q, changed, radius),
            CellIndex::Sharded(ix) => NeighborIndex::<P>::probe_conflicts(ix, q, changed, radius),
            CellIndex::Cover(ix) => NeighborIndex::<P>::probe_conflicts(ix, q, changed, radius),
        }
    }

    fn maintain(&mut self, slab: &CellSlab<P>) -> u64 {
        match self {
            CellIndex::Linear(_) | CellIndex::Cover(_) => 0,
            CellIndex::Grid(ix) => ix.maintain(slab),
            CellIndex::Sharded(ix) => ix.maintain(slab),
        }
    }

    fn check_coherence<M: Metric<P>>(&self, slab: &CellSlab<P>, metric: &M) -> Result<(), String> {
        match self {
            CellIndex::Linear(ix) => ix.check_coherence(slab, metric),
            CellIndex::Grid(ix) => ix.check_coherence(slab, metric),
            CellIndex::Sharded(ix) => ix.check_coherence(slab, metric),
            CellIndex::Cover(ix) => ix.check_coherence(slab, metric),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_config_builds_what_was_asked() {
        assert_eq!(
            CellIndex::from_config(NeighborIndexKind::LinearScan, 0.5, 1, true).label(),
            "linear"
        );
        assert_eq!(
            CellIndex::from_config(NeighborIndexKind::Grid { side: None }, 0.5, 1, true).label(),
            "grid"
        );
        assert_eq!(
            CellIndex::from_config(NeighborIndexKind::Grid { side: Some(2.0) }, 0.5, 1, true)
                .label(),
            "grid"
        );
        assert_eq!(
            CellIndex::from_config(NeighborIndexKind::Grid { side: None }, 0.5, 4, true).label(),
            "sharded-grid"
        );
        assert_eq!(
            CellIndex::from_config(NeighborIndexKind::CoverTree, 0.5, 1, true).label(),
            "cover-tree"
        );
        // Sharding a linear scan or a cover tree is meaningless; the
        // single structure wins.
        assert_eq!(
            CellIndex::from_config(NeighborIndexKind::LinearScan, 0.5, 4, true).label(),
            "linear"
        );
        assert_eq!(
            CellIndex::from_config(NeighborIndexKind::CoverTree, 0.5, 4, false).label(),
            "cover-tree"
        );
    }

    #[test]
    fn degenerate_sides_degrade_to_the_linear_scan_without_panicking() {
        // Smuggled configs (deserialization/FFI) bypass builder validation;
        // the engine must not panic in release builds.
        for bad in [0.0, -3.0, f64::NAN, f64::INFINITY] {
            let ix =
                CellIndex::from_config(NeighborIndexKind::Grid { side: Some(bad) }, 0.5, 1, true);
            assert_eq!(ix.label(), "linear", "side {bad} must degrade");
        }
        // A degenerate radius poisons the default side the same way, and a
        // smuggled shard count of zero cannot panic either.
        let ix = CellIndex::from_config(NeighborIndexKind::Grid { side: None }, f64::NAN, 1, true);
        assert_eq!(ix.label(), "linear");
        let ix = CellIndex::from_config(NeighborIndexKind::Grid { side: None }, 0.5, 0, true);
        assert_eq!(ix.label(), "linear");
    }

    #[test]
    fn shard_occupancy_matches_the_variant() {
        let mut out = vec![9, 9];
        CellIndex::from_config(NeighborIndexKind::LinearScan, 0.5, 1, true)
            .shard_occupancy_into(&mut out);
        assert!(out.is_empty());
        CellIndex::from_config(NeighborIndexKind::Grid { side: None }, 0.5, 1, true)
            .shard_occupancy_into(&mut out);
        assert_eq!(out, vec![0]);
        CellIndex::from_config(NeighborIndexKind::Grid { side: None }, 0.5, 3, true)
            .shard_occupancy_into(&mut out);
        assert_eq!(out, vec![0, 0, 0]);
        CellIndex::from_config(NeighborIndexKind::CoverTree, 0.5, 1, true)
            .shard_occupancy_into(&mut out);
        assert_eq!(out, vec![0]);
    }
}
