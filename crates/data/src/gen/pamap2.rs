//! PAMAP2 surrogate (Table 2: 447,000 × 51, 13 classes).
//!
//! The real PAMAP2 dataset records body-worn IMU and heart-rate channels
//! while subjects perform activities (walking, cycling, ironing, …) one at
//! a time. As a stream it is *piecewise stationary*: long single-activity
//! segments with abrupt transitions, plus sensor glitches. The surrogate
//! reproduces the segment structure (activity sessions of configurable
//! length), the 51-dimensional sensor space at small scale (Table 2 lists
//! r = 5), and a 1 % uniform-glitch rate that exercises the outlier
//! reservoir (Figs 16, 17 run on this dataset).

use edm_common::point::DenseVector;
use edm_common::time::StreamClock;

use crate::stream::{LabeledStream, StreamPoint};

use super::blobs::scatter_centers;
use super::{randn, rng, sample_weighted};

/// Number of activity classes (Table 2: 13).
pub const N_CLASSES: usize = 13;

/// Dimensionality (Table 2: 51).
pub const DIM: usize = 51;

/// Configuration for the PAMAP2 surrogate.
#[derive(Debug, Clone)]
pub struct Pamap2Config {
    /// Number of points (paper: 447,000).
    pub n: usize,
    /// Arrival rate in points/sec.
    pub rate: f64,
    /// Mean points per activity session.
    pub segment_len: usize,
    /// Probability of a sensor glitch (uniform noise point).
    pub glitch_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Pamap2Config {
    fn default() -> Self {
        Pamap2Config {
            n: 447_000,
            rate: 1_000.0,
            segment_len: 4_000,
            glitch_rate: 0.01,
            seed: 0xBA1,
        }
    }
}

/// Generates the PAMAP2 surrogate stream. Glitch points carry no label.
pub fn generate(cfg: &Pamap2Config) -> LabeledStream<DenseVector> {
    assert!(cfg.segment_len > 0 && (0.0..1.0).contains(&cfg.glitch_rate));
    let mut r = rng(cfg.seed);
    let extent = 50.0;
    let centers = scatter_centers(N_CLASSES, DIM, extent, 18.0, &mut r);
    // Each activity spans sub-modes (gait phases, posture variants): the
    // activity summarizes into several cells ~6 units apart, within
    // Table 2's separation structure (classes ≥ 18 apart, r = 5).
    let submodes = 8usize;
    let modes: Vec<Vec<Vec<f64>>> = centers
        .iter()
        .map(|c| {
            (0..submodes)
                .map(|_| {
                    c.iter().map(|&x| x + (rand::Rng::gen::<f64>(&mut r) - 0.5) * 2.2).collect()
                })
                .collect()
        })
        .collect();
    let clock = StreamClock::new(cfg.rate);
    // σ keeps sub-mode pairwise distance (σ·√(2·51) ≈ 2.5) inside r = 5.
    let sigma = 0.25;
    let weights = vec![1.0; N_CLASSES];
    let mut points = Vec::with_capacity(cfg.n);
    let mut activity = sample_weighted(&mut r, &weights);
    for i in 0..cfg.n {
        if i % cfg.segment_len == 0 {
            // Switch to a different activity at each session boundary.
            let next = sample_weighted(&mut r, &weights);
            activity = if next == activity { (next + 1) % N_CLASSES } else { next };
        }
        let t = clock.at(i as u64);
        if rand::Rng::gen::<f64>(&mut r) < cfg.glitch_rate {
            // Sensor glitch: uniform noise anywhere in the data space.
            let coords: Vec<f64> = (0..DIM)
                .map(|_| rand::Rng::gen::<f64>(&mut r) * extent * 1.5 - extent * 0.25)
                .collect();
            points.push(StreamPoint::new(DenseVector::from(coords), t, None));
        } else {
            let m = rand::Rng::gen_range(&mut r, 0..submodes);
            let coords: Vec<f64> =
                modes[activity][m].iter().map(|&c| c + sigma * randn(&mut r)).collect();
            points.push(StreamPoint::new(DenseVector::from(coords), t, Some(activity as u32)));
        }
    }
    LabeledStream::new("PAMAP2", points, DIM, 5.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_table2() {
        let s = generate(&Pamap2Config { n: 3_000, ..Default::default() });
        assert_eq!(s.dim, 51);
        assert_eq!(s.default_r, 5.0);
    }

    #[test]
    fn stream_is_piecewise_stationary() {
        let cfg =
            Pamap2Config { n: 20_000, segment_len: 2_000, glitch_rate: 0.0, ..Default::default() };
        let s = generate(&cfg);
        // Within a session, one label dominates completely.
        for w in s.points.chunks(2_000) {
            let first = w[0].label;
            let same = w.iter().filter(|p| p.label == first).count();
            assert_eq!(same, w.len(), "session not pure");
        }
        // Across sessions, the label changes at least sometimes.
        let labels: Vec<Option<u32>> = s.points.chunks(2_000).map(|w| w[0].label).collect();
        assert!(labels.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn glitches_are_unlabeled_and_about_one_percent() {
        let s = generate(&Pamap2Config { n: 50_000, ..Default::default() });
        let glitches = s.points.iter().filter(|p| p.label.is_none()).count();
        let rate = glitches as f64 / s.len() as f64;
        assert!((rate - 0.01).abs() < 0.004, "glitch rate {rate}");
    }

    #[test]
    fn consecutive_sessions_differ() {
        let cfg =
            Pamap2Config { n: 30_000, segment_len: 3_000, glitch_rate: 0.0, ..Default::default() };
        let s = generate(&cfg);
        let labels: Vec<Option<u32>> = s.points.chunks(3_000).map(|w| w[0].label).collect();
        for w in labels.windows(2) {
            assert_ne!(w[0], w[1], "adjacent sessions share an activity");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = Pamap2Config { n: 400, ..Default::default() };
        assert_eq!(generate(&cfg).points[200].payload, generate(&cfg).points[200].payload);
    }
}
