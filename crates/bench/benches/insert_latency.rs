//! Criterion micro-bench: EDMStream per-point insert latency on each
//! dataset surrogate (the microscopic view of paper Fig 9).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use edm_bench::catalog::{self, DatasetId};
use edm_common::metric::Euclidean;
use edm_core::EdmStream;

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("edmstream_insert");
    group.sample_size(10);
    for id in [DatasetId::Kdd, DatasetId::CoverType, DatasetId::Pamap2] {
        let ds = catalog::load(id, 0.01, 1_000.0);
        group.bench_function(ds.id.name(), |b| {
            b.iter_batched(
                || {
                    // Warm engine: initialized and past the init buffer.
                    let mut e = EdmStream::new(ds.edm.clone(), Euclidean);
                    for p in ds.stream.iter().take(2_000) {
                        e.insert(&p.payload, p.ts);
                    }
                    e
                },
                |mut e| {
                    for p in ds.stream.iter().skip(2_000) {
                        e.insert(&p.payload, p.ts);
                    }
                    e
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_insert);
criterion_main!(benches);
