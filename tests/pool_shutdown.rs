//! Dropping an engine mid-stream must join every pool worker: the
//! persistent pool owns real OS threads, so a missed join is a thread
//! leak that outlives the engine. This lives in its own test binary so
//! `live_pool_workers()` — a process-wide counter — is not perturbed by
//! concurrent engine-spawning tests in other suites.

use edmstream::{live_pool_workers, DenseVector, EdmConfig, EdmStream, Euclidean};
use std::num::NonZeroUsize;
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// `live_pool_workers()` is process-wide, so even within this binary the
/// tests must not overlap; each takes this lock first.
static COUNTER_LOCK: Mutex<()> = Mutex::new(());

fn exclusive() -> MutexGuard<'static, ()> {
    COUNTER_LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn engine(threads: usize) -> EdmStream<DenseVector, Euclidean> {
    let cfg = EdmConfig::builder(0.8)
        .rate(100.0)
        .beta_for_threshold(3.0)
        .init_points(25)
        .shards(NonZeroUsize::new(4).expect("nonzero"))
        .commit_wave_min(4)
        .ingest_threads(NonZeroUsize::new(threads).expect("nonzero"))
        .build()
        .expect("valid test configuration");
    EdmStream::new(cfg, Euclidean)
}

fn batch(n: usize) -> Vec<(DenseVector, f64)> {
    (0..n)
        .map(|i| {
            let x = (i % 16) as f64 * 2.5;
            let y = (i / 16 % 16) as f64 * 2.5;
            (DenseVector::from([x, y]), i as f64 / 100.0)
        })
        .collect()
}

/// Waits for the live-worker count to return to `baseline`. Worker exit
/// is asynchronous only in the narrow window between `Drop` signalling
/// shutdown and `join` returning, so this should converge immediately;
/// the timeout exists to turn a leak into a readable failure.
fn assert_workers_drain_to(baseline: usize) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let live = live_pool_workers();
        if live == baseline {
            return;
        }
        assert!(Instant::now() < deadline, "pool workers leaked: {live} live, expected {baseline}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn dropping_engine_mid_batch_joins_all_workers() {
    let _guard = exclusive();
    let baseline = live_pool_workers();

    {
        let mut e = engine(4);
        // Enough points to leave init, fan out probe rounds, and commit
        // waves — the pool is hot (workers parked between rounds, not
        // exited) at the moment the engine is dropped.
        let points = batch(700);
        for window in points.chunks(64) {
            e.insert_batch(window);
        }
        assert!(
            live_pool_workers() >= baseline + 3,
            "a 4-thread engine should keep 3 persistent workers alive"
        );
        assert!(e.stats().pool_rounds > 0, "pool never dispatched a round");
        // Drop with work freshly completed and workers parked.
    }

    assert_workers_drain_to(baseline);
}

#[test]
fn serial_engine_spawns_no_workers() {
    // The forced-threads CI leg reroutes `ingest_threads: 1` back to 4 in
    // debug builds (see engine/mod.rs), which defeats this test's point.
    if std::env::var_os("EDM_FORCE_INGEST_THREADS").is_some() {
        return;
    }
    let _guard = exclusive();
    let baseline = live_pool_workers();
    let mut e = engine(1);
    e.insert_batch(&batch(300));
    assert_eq!(live_pool_workers(), baseline, "ingest_threads=1 must not spawn pool workers");
    assert_eq!(e.stats().pool_rounds, 0, "serial engines run every round inline");
    drop(e);
    assert_workers_drain_to(baseline);
}

#[test]
fn repeated_engine_churn_does_not_accumulate_threads() {
    let _guard = exclusive();
    let baseline = live_pool_workers();
    for _ in 0..8 {
        let mut e = engine(4);
        e.insert_batch(&batch(200));
        drop(e);
        assert_workers_drain_to(baseline);
    }
}
