//! Property tests for the quality metrics: boundedness, perfect-score
//! conditions, and permutation invariance.

use edm_common::metric::Euclidean;
use edm_common::point::DenseVector;
use edm_metrics::cmm::{cmm, CmmConfig, EvalObject};
use edm_metrics::external::{ari, nmi, pairwise_f1, purity, Contingency};
use proptest::prelude::*;

fn labels(n: usize) -> impl Strategy<Value = (Vec<Option<usize>>, Vec<Option<u32>>)> {
    (
        prop::collection::vec(prop::option::weighted(0.8, 0usize..5), n),
        prop::collection::vec(prop::option::weighted(0.8, 0u32..5), n),
    )
}

proptest! {
    /// All external metrics are bounded and defined for arbitrary inputs.
    #[test]
    fn external_metrics_are_bounded((pred, truth) in labels(40)) {
        let c = Contingency::new(&pred, &truth);
        let p = purity(&c);
        prop_assert!((0.0..=1.0).contains(&p));
        let (pr, rc, f1) = pairwise_f1(&c);
        prop_assert!((0.0..=1.0).contains(&pr));
        prop_assert!((0.0..=1.0).contains(&rc));
        prop_assert!((0.0..=1.0).contains(&f1));
        let n = nmi(&c);
        prop_assert!((-1e-9..=1.0 + 1e-9).contains(&n), "nmi {n}");
        let a = ari(&c);
        prop_assert!((-1.0..=1.0 + 1e-9).contains(&a), "ari {a}");
    }

    /// Relabeling predicted cluster ids never changes any metric
    /// (co-membership is all that matters).
    #[test]
    fn metrics_invariant_under_cluster_relabeling((pred, truth) in labels(30)) {
        let c1 = Contingency::new(&pred, &truth);
        // Bijective relabel: id -> id*7+3.
        let relabeled: Vec<Option<usize>> = pred.iter().map(|p| p.map(|x| x * 7 + 3)).collect();
        let c2 = Contingency::new(&relabeled, &truth);
        prop_assert_eq!(purity(&c1), purity(&c2));
        prop_assert_eq!(pairwise_f1(&c1), pairwise_f1(&c2));
        prop_assert!((nmi(&c1) - nmi(&c2)).abs() < 1e-12);
        prop_assert!((ari(&c1) - ari(&c2)).abs() < 1e-12);
    }

    /// CMM is bounded in [0,1] on random geometry and labelings, and 1.0
    /// when prediction equals ground truth.
    #[test]
    fn cmm_bounded_and_perfect_on_identity(
        coords in prop::collection::vec((0.0f64..10.0, 0.0f64..10.0), 8..40),
        classes in prop::collection::vec(0u32..3, 8..40),
        clusters in prop::collection::vec(prop::option::weighted(0.8, 0usize..3), 8..40),
    ) {
        let n = coords.len().min(classes.len()).min(clusters.len());
        let pts: Vec<DenseVector> =
            coords[..n].iter().map(|&(x, y)| DenseVector::from([x, y])).collect();
        let objs: Vec<EvalObject<'_, _>> = (0..n)
            .map(|i| EvalObject {
                payload: &pts[i],
                weight: 1.0,
                class: Some(classes[i]),
                cluster: clusters[i],
            })
            .collect();
        let v = cmm(&objs, &Euclidean, &CmmConfig::default());
        prop_assert!((0.0..=1.0).contains(&v), "cmm {v}");

        // Identity clustering scores exactly 1.
        let perfect: Vec<EvalObject<'_, _>> = (0..n)
            .map(|i| EvalObject {
                payload: &pts[i],
                weight: 1.0,
                class: Some(classes[i]),
                cluster: Some(classes[i] as usize),
            })
            .collect();
        prop_assert_eq!(cmm(&perfect, &Euclidean, &CmmConfig::default()), 1.0);
    }
}
