//! Fig 6 — SDS snapshots with time-decay shading at
//! t ∈ {1, 4, 8, 12, 14, 20} s.
//!
//! Reproduces the paper's six panels: two clusters approach, merge at
//! ~9 s, a new cluster emerges on the right at 12 s, the old one dies by
//! 14 s, and the survivor splits into two diverging halves. Glyph shading
//! encodes freshness (`@` < 2 s old, `*` < 4 s, `.` older), matching the
//! paper's grey palette.

use edm_data::gen::sds::{self, SdsConfig};

use super::Ctx;
use crate::report::ascii_scatter;

/// Regenerates Fig 6. SDS is always generated at full paper size
/// (20k points — small enough), so snapshot times match the paper.
pub fn run(_ctx: &Ctx) -> std::io::Result<()> {
    let stream = sds::generate(&SdsConfig::default());
    for &snap in &[1.0, 4.0, 8.0, 12.0, 14.0, 20.0] {
        let marks: Vec<(f64, f64, char)> = stream
            .points
            .iter()
            .filter(|p| p.ts <= snap && snap - p.ts < 8.0)
            .map(|p| {
                let age = snap - p.ts;
                let glyph = if age < 2.0 {
                    '@'
                } else if age < 4.0 {
                    '*'
                } else {
                    '.'
                };
                (p.payload.coords()[0], p.payload.coords()[1], glyph)
            })
            .collect();
        println!("\n== fig6: SDS snapshot at t = {snap:.0}s ({} visible points) ==", marks.len());
        print!("{}", ascii_scatter(&marks, (-9.0, 15.0), (-6.0, 6.0), 14, 64));
    }
    println!("(palette: '@' <2s old, '*' <4s, '.' older — fresher is darker)");
    Ok(())
}
