//! Parameter-selection utilities.
//!
//! The paper chooses the cell radius `r` "from 0.5% to 2% of the distance
//! of all pairs of objects in ascending order" (§6.7, following the DP
//! paper's d_c heuristic). Computing all O(n²) pairwise distances is
//! wasteful on half-million-point streams, so [`distance_quantile`] samples
//! a bounded number of random pairs — the quantile estimate converges fast
//! and the choice of `r` only needs one significant digit.

use edm_common::metric::Metric;
use edm_common::stats::quantile;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Estimates the `q`-quantile of pairwise distances by sampling up to
/// `max_pairs` random point pairs (deterministic per seed).
///
/// # Panics
/// Panics when fewer than two points are supplied or `q ∉ [0,1]`.
pub fn distance_quantile<P, M: Metric<P>>(
    points: &[P],
    metric: &M,
    q: f64,
    max_pairs: usize,
    seed: u64,
) -> f64 {
    assert!(points.len() >= 2, "need at least two points");
    let n = points.len();
    let total_pairs = n * (n - 1) / 2;
    let mut dists: Vec<f64>;
    if total_pairs <= max_pairs {
        dists = Vec::with_capacity(total_pairs);
        for i in 0..n {
            for j in (i + 1)..n {
                dists.push(metric.dist(&points[i], &points[j]));
            }
        }
    } else {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        dists = Vec::with_capacity(max_pairs);
        while dists.len() < max_pairs {
            let i = rng.gen_range(0..n);
            let j = rng.gen_range(0..n);
            if i != j {
                dists.push(metric.dist(&points[i], &points[j]));
            }
        }
    }
    quantile(&dists, q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use edm_common::metric::Euclidean;
    use edm_common::point::DenseVector;

    fn grid_points() -> Vec<DenseVector> {
        (0..10).map(|i| DenseVector::from([i as f64])).collect()
    }

    #[test]
    fn exact_when_pairs_fit() {
        let pts = grid_points();
        // All 45 distances enumerated: min 1, max 9.
        let lo = distance_quantile(&pts, &Euclidean, 0.0, 1000, 0);
        let hi = distance_quantile(&pts, &Euclidean, 1.0, 1000, 0);
        assert_eq!(lo, 1.0);
        assert_eq!(hi, 9.0);
    }

    #[test]
    fn sampled_estimate_is_close_to_exact() {
        let pts: Vec<DenseVector> =
            (0..200).map(|i| DenseVector::from([(i % 40) as f64])).collect();
        let exact = distance_quantile(&pts, &Euclidean, 0.5, usize::MAX, 0);
        let sampled = distance_quantile(&pts, &Euclidean, 0.5, 2_000, 0);
        assert!((exact - sampled).abs() <= 2.0, "exact {exact} sampled {sampled}");
    }

    #[test]
    fn deterministic_per_seed() {
        let pts: Vec<DenseVector> =
            (0..100).map(|i| DenseVector::from([i as f64 * 0.37])).collect();
        let a = distance_quantile(&pts, &Euclidean, 0.02, 500, 9);
        let b = distance_quantile(&pts, &Euclidean, 0.02, 500, 9);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_single_point() {
        distance_quantile(&[DenseVector::from([0.0])], &Euclidean, 0.5, 10, 0);
    }
}
