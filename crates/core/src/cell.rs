//! Cluster-cells (paper Definition 4).
//!
//! A cluster-cell summarizes the points that fell within radius `r` of its
//! seed: the tuple `{s_c, ρ_c^t, δ_c^t}` plus the bookkeeping the stream
//! engine needs (dependency pointer, children, last-absorption time).
//! Densities decay lazily — the cell stores `(ρ, t_ρ)` and evaluates
//! `ρ · a^{λ(t − t_ρ)}` on demand, which is sound because every cell decays
//! at the same rate (paper §4.2).

use edm_common::decay::DecayModel;
use edm_common::time::Timestamp;
use serde::{Deserialize, Serialize};

/// Stable identifier of a cluster-cell within the engine's slab.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CellId(pub u32);

impl std::fmt::Display for CellId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A cluster-cell: seed payload plus timely density and tree state.
#[derive(Debug, Clone)]
pub struct Cell<P> {
    /// The seed point `s_c`; all summarized points were within `r` of it.
    pub seed: P,
    /// Density at `rho_time` (Eq. 6, maintained by Eq. 8).
    rho: f64,
    /// Instant at which `rho` was last materialized.
    rho_time: Timestamp,
    /// Dependency: the nearest active cell with higher density (`None` for
    /// the DP-Tree root).
    pub dep: Option<CellId>,
    /// Dependent distance δ to `dep` (`+∞` for the root).
    pub delta: f64,
    /// Children in the DP-Tree (cells whose dependency is this cell).
    pub children: Vec<CellId>,
    /// When the cell last absorbed a point (drives reservoir recycling).
    pub last_absorb: Timestamp,
    /// Lifetime count of absorbed points (diagnostics only).
    pub absorbed: u64,
    /// Whether the cell currently lives in the DP-Tree (vs. the reservoir).
    pub active: bool,
    /// Current cluster id tag, managed by the evolution registry.
    pub cluster: Option<u64>,
}

impl<P> Cell<P> {
    /// Creates a fresh cell seeded by a point arriving at `t` (ρ = 1).
    pub fn new(seed: P, t: Timestamp) -> Self {
        Cell {
            seed,
            rho: 1.0,
            rho_time: t,
            dep: None,
            delta: f64::INFINITY,
            children: Vec::new(),
            last_absorb: t,
            absorbed: 1,
            active: false,
            cluster: None,
        }
    }

    /// Density decayed to time `t` (lazy evaluation of Eq. 6).
    #[inline]
    pub fn rho_at(&self, t: Timestamp, decay: &DecayModel) -> f64 {
        self.rho * decay.factor(t - self.rho_time)
    }

    /// Absorbs one point at time `t` (Eq. 8) and returns
    /// `(density_before, density_after)` both evaluated at `t` — the pair
    /// the density filter's window needs.
    pub fn absorb(&mut self, t: Timestamp, decay: &DecayModel) -> (f64, f64) {
        let before = self.rho_at(t, decay);
        self.rho = before + 1.0;
        self.rho_time = t;
        self.last_absorb = t;
        self.absorbed += 1;
        (before, self.rho)
    }

    /// Rebases the stored density to time `t` without absorbing. Useful for
    /// keeping `rho_time` fresh in long-lived cells (pure refactoring of
    /// the lazy representation; the value at any `t' ≥ t` is unchanged).
    pub fn rebase(&mut self, t: Timestamp, decay: &DecayModel) {
        self.rho = self.rho_at(t, decay);
        self.rho_time = t;
    }

    /// Raw stored density and its epoch (for serialization/tests).
    pub fn raw_rho(&self) -> (f64, Timestamp) {
        (self.rho, self.rho_time)
    }
}

/// Strict density total order at time `t`: ties broken by cell id (lower id
/// counts as denser) so every comparison in the engine is deterministic.
#[inline]
pub fn denser<P>(
    a: &Cell<P>,
    a_id: CellId,
    b: &Cell<P>,
    b_id: CellId,
    t: Timestamp,
    decay: &DecayModel,
) -> bool {
    let ra = a.rho_at(t, decay);
    let rb = b.rho_at(t, decay);
    ra > rb || (ra == rb && a_id < b_id)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decay() -> DecayModel {
        DecayModel::paper_default()
    }

    #[test]
    fn new_cell_has_unit_density_at_birth() {
        let c = Cell::new((), 5.0);
        assert_eq!(c.rho_at(5.0, &decay()), 1.0);
        assert!(!c.active);
        assert!(c.dep.is_none());
        assert_eq!(c.delta, f64::INFINITY);
    }

    #[test]
    fn density_decays_between_observations() {
        let c = Cell::new((), 0.0);
        let r1 = c.rho_at(1.0, &decay());
        let r2 = c.rho_at(2.0, &decay());
        assert!((r1 - 0.998).abs() < 1e-12);
        assert!(r2 < r1);
    }

    #[test]
    fn absorb_applies_eq8_and_reports_window() {
        let mut c = Cell::new((), 0.0);
        let (before, after) = c.absorb(1.0, &decay());
        assert!((before - 0.998).abs() < 1e-12);
        assert!((after - 1.998).abs() < 1e-12);
        assert_eq!(c.absorbed, 2);
        assert_eq!(c.last_absorb, 1.0);
    }

    #[test]
    fn rebase_preserves_future_values() {
        let mut a = Cell::new((), 0.0);
        let b = Cell::new((), 0.0);
        a.absorb(1.0, &decay());
        let mut a2 = a.clone();
        a2.rebase(3.0, &decay());
        for t in [3.0, 5.0, 100.0] {
            assert!((a.rho_at(t, &decay()) - a2.rho_at(t, &decay())).abs() < 1e-12);
        }
        let _ = b;
    }

    #[test]
    fn denser_is_a_strict_total_order_under_ties() {
        let a = Cell::new((), 0.0);
        let b = Cell::new((), 0.0);
        let (ia, ib) = (CellId(1), CellId(2));
        // Identical densities: lower id wins, antisymmetric.
        assert!(denser(&a, ia, &b, ib, 1.0, &decay()));
        assert!(!denser(&b, ib, &a, ia, 1.0, &decay()));
    }

    #[test]
    fn denser_respects_actual_density() {
        let mut a = Cell::new((), 0.0);
        let b = Cell::new((), 0.0);
        a.absorb(0.5, &decay());
        assert!(denser(&a, CellId(9), &b, CellId(1), 1.0, &decay()));
    }

    #[test]
    fn order_is_stable_under_shared_decay() {
        // Theorem 1's foundation: without absorption, order never flips.
        let mut a = Cell::new((), 0.0);
        a.absorb(0.1, &decay());
        let b = Cell::new((), 0.0);
        for t in [1.0, 10.0, 500.0] {
            assert!(denser(&a, CellId(0), &b, CellId(1), t, &decay()));
        }
    }
}
