//! Fig 12 — response time vs data dimensionality (HDS, 10–1000 dims).
//!
//! All five algorithms process HDS streams of increasing width; the paper
//! expects response time to grow with dimensionality for most algorithms
//! (distance computations dominate), with DBSTREAM showing its
//! space-density anomaly.

use super::Ctx;
use crate::catalog::{self, DatasetId};
use crate::experiments::fig09_10::latency_series;
use crate::report::{f, Report};

/// Regenerates Fig 12.
pub fn run(ctx: &Ctx) -> std::io::Result<()> {
    let mut rep = Report::new("fig12_dimensions", &["dim", "algorithm", "avg_us"], ctx.out_dir());
    for dim in [10usize, 30, 100, 300, 1000] {
        // Wide streams get expensive per point; cap the length so the
        // sweep stays laptop-friendly at any scale.
        let scale = if dim >= 300 { ctx.scale.min(0.03) } else { ctx.scale };
        let ds = catalog::load(DatasetId::Hds(dim), scale, 1_000.0);
        for mut algo in catalog::all_algorithms(&ds, 1_000) {
            let series = latency_series(algo.as_mut(), &ds.stream, 4);
            let avg = series.iter().map(|(_, us)| *us).sum::<f64>() / series.len().max(1) as f64;
            rep.row(vec![dim.to_string(), algo.name().into(), f(avg, 2)]);
        }
    }
    rep.finish()
}
