//! D-Stream (Chen & Tu, KDD'07) — grid-based stream clustering.
//!
//! Online phase: each point maps to a grid cell; the cell's *characteristic
//! vector* holds a decayed density updated lazily (`D ← D·a^{λΔt} + 1`,
//! the same decay algebra as EDMStream's Eq. 8). Offline phase (every
//! `offline_every` points): classify grids as dense / transitional /
//! sparse, delete *sporadic* grids, and cluster dense grids by
//! face-adjacency connected components, attaching transitional grids to
//! adjacent clusters.
//!
//! The original's density thresholds `D_m = c_m/(N(1−a^λ))` divide by the
//! number of *possible* grids `N`, which is unbounded for an open domain.
//! We use the equivalent absolute form: a grid is dense when it sustains
//! `c_m` points/sec of decayed mass, i.e. `D_m(t) = c_m·(1−a^{λ·age})/(1−a^λ)`
//! (the age factor keeps thresholds meaningful before the decay reaches
//! steady state). `c_m = 3`, `c_l = 0.8` as in the original.

use edm_common::decay::DecayModel;
use edm_common::hash::{fx_map, FxHashMap};
use edm_common::point::DenseVector;
use edm_common::time::Timestamp;
use edm_data::clusterer::StreamClusterer;

/// Grid coordinates (one integer per dimension).
type GridKey = Box<[i32]>;

/// Configuration for D-Stream.
#[derive(Debug, Clone)]
pub struct DStreamConfig {
    /// Grid cell width (same for every dimension).
    pub grid_width: f64,
    /// Decay model (aligned with EDMStream's for equal decay effect, §6.1).
    pub decay: DecayModel,
    /// Dense-grid coefficient `c_m` (original paper: 3.0).
    pub c_m: f64,
    /// Sparse-grid coefficient `c_l` (original paper: 0.8).
    pub c_l: f64,
    /// Run the offline phase every this many points.
    pub offline_every: u64,
}

impl DStreamConfig {
    /// Defaults for a dataset whose natural cell radius is `r`. The grid
    /// width is r: axis-aligned grids cover far less volume than distance
    /// balls in high dimension, so matching the ball diameter would leave
    /// each class in a handful of grids; width r reproduces the original's
    /// behavior of occupying many grids per dense region (and its
    /// memory-growth failure mode on wide streams).
    pub fn new(r: f64) -> Self {
        DStreamConfig {
            grid_width: r,
            decay: DecayModel::paper_default(),
            c_m: 3.0,
            c_l: 0.8,
            offline_every: 1_000,
        }
    }
}

#[derive(Debug, Clone)]
struct Grid {
    density: f64,
    last_update: Timestamp,
    /// Cluster id assigned by the last offline phase.
    cluster: Option<usize>,
}

/// The D-Stream clusterer.
pub struct DStream {
    cfg: DStreamConfig,
    grids: FxHashMap<GridKey, Grid>,
    points: u64,
    n_clusters: usize,
    last_offline: Timestamp,
    start: Option<Timestamp>,
    /// Points arrived since the last offline phase.
    dirty: bool,
}

impl DStream {
    /// Creates a D-Stream instance.
    pub fn new(cfg: DStreamConfig) -> Self {
        assert!(cfg.grid_width > 0.0, "grid width must be positive");
        DStream {
            cfg,
            grids: fx_map(),
            points: 0,
            n_clusters: 0,
            last_offline: 0.0,
            start: None,
            dirty: false,
        }
    }

    fn key_of(&self, p: &DenseVector) -> GridKey {
        p.coords()
            .iter()
            .map(|&x| (x / self.cfg.grid_width).floor() as i32)
            .collect::<Vec<i32>>()
            .into_boxed_slice()
    }

    /// Decayed density of a grid at time `t` (diagnostics).
    pub fn grid_density(&self, p: &DenseVector, t: Timestamp) -> Option<f64> {
        let key = self.key_of(p);
        self.grids.get(&key).map(|g| g.density * self.cfg.decay.factor(t - g.last_update))
    }

    /// Age-adjusted dense/sparse thresholds: a grid is dense when it has
    /// sustained `c_m` points/sec since the stream began.
    fn thresholds(&self, t: Timestamp) -> (f64, f64) {
        let age = (t - self.start.unwrap_or(t)).max(0.0);
        let ret = self.cfg.decay.retention();
        let geo = ((1.0 - ret.powf(age)) / (1.0 - ret)).max(1.0);
        (self.cfg.c_m * geo, self.cfg.c_l * geo)
    }

    /// The offline phase: sporadic removal + dense-grid connectivity.
    fn offline(&mut self, t: Timestamp) {
        let (dm, dl) = self.thresholds(t);
        // Remove sporadic grids (below the sparse threshold's fraction).
        let sporadic_cut = dl * 0.1;
        self.grids
            .retain(|_, g| g.density * self.cfg.decay.factor(t - g.last_update) > sporadic_cut);
        // Classify.
        let mut dense: Vec<GridKey> = Vec::new();
        let mut transitional: Vec<GridKey> = Vec::new();
        for (k, g) in self.grids.iter_mut() {
            g.cluster = None;
            let d = g.density * self.cfg.decay.factor(t - g.last_update);
            if d >= dm {
                dense.push(k.clone());
            } else if d >= dl {
                transitional.push(k.clone());
            }
        }
        // Connected components over dense grids (face adjacency).
        let mut cluster_of: FxHashMap<GridKey, usize> = fx_map();
        let mut n_clusters = 0;
        let dense_set: std::collections::HashSet<&GridKey> = dense.iter().collect();
        let mut stack: Vec<GridKey> = Vec::new();
        for k in &dense {
            if cluster_of.contains_key(k) {
                continue;
            }
            let cid = n_clusters;
            n_clusters += 1;
            stack.push(k.clone());
            cluster_of.insert(k.clone(), cid);
            while let Some(cur) = stack.pop() {
                for (dim, _) in cur.iter().enumerate() {
                    for delta in [-1i32, 1] {
                        let mut nb = cur.to_vec();
                        nb[dim] += delta;
                        let nb: GridKey = nb.into_boxed_slice();
                        if dense_set.contains(&nb) && !cluster_of.contains_key(&nb) {
                            cluster_of.insert(nb.clone(), cid);
                            stack.push(nb);
                        }
                    }
                }
            }
        }
        // Attach transitional grids to an adjacent dense cluster.
        for k in &transitional {
            'search: for (dim, _) in k.iter().enumerate() {
                for delta in [-1i32, 1] {
                    let mut nb = k.to_vec();
                    nb[dim] += delta;
                    if let Some(&cid) = cluster_of.get(nb.as_slice()) {
                        cluster_of.insert(k.clone(), cid);
                        break 'search;
                    }
                }
            }
        }
        for (k, cid) in &cluster_of {
            if let Some(g) = self.grids.get_mut(k) {
                g.cluster = Some(*cid);
            }
        }
        self.n_clusters = n_clusters;
        self.last_offline = t;
        self.dirty = false;
    }
}

impl StreamClusterer<DenseVector> for DStream {
    fn name(&self) -> &'static str {
        "D-Stream"
    }

    fn insert(&mut self, p: &DenseVector, t: Timestamp) {
        self.start.get_or_insert(t);
        self.points += 1;
        let key = self.key_of(p);
        let decay = self.cfg.decay;
        let grid =
            self.grids.entry(key).or_insert(Grid { density: 0.0, last_update: t, cluster: None });
        grid.density = grid.density * decay.factor(t - grid.last_update) + 1.0;
        grid.last_update = t;
        self.dirty = true;
        if self.points.is_multiple_of(self.cfg.offline_every) {
            self.offline(t);
        }
    }

    fn prepare(&mut self, t: Timestamp) {
        if self.dirty || self.last_offline == 0.0 {
            self.offline(t);
        }
    }

    fn cluster_of(&self, p: &DenseVector, _t: Timestamp) -> Option<usize> {
        let key = self.key_of(p);
        self.grids.get(&key).and_then(|g| g.cluster)
    }

    fn n_clusters(&self, _t: Timestamp) -> usize {
        self.n_clusters
    }

    fn n_summaries(&self) -> usize {
        self.grids.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DStreamConfig {
        let mut c = DStreamConfig::new(0.5);
        c.offline_every = 100;
        c
    }

    fn feed_blobs(ds: &mut DStream, n: usize) {
        for i in 0..n {
            let t = i as f64 / 100.0;
            let jitter = (i % 4) as f64 * 0.1;
            let p = if i % 2 == 0 {
                DenseVector::from([jitter, jitter])
            } else {
                DenseVector::from([20.0 + jitter, 20.0 + jitter])
            };
            ds.insert(&p, t);
        }
    }

    #[test]
    fn two_blobs_form_two_grid_clusters() {
        let mut ds = DStream::new(cfg());
        feed_blobs(&mut ds, 600);
        let t = 6.0;
        assert_eq!(ds.n_clusters(t), 2);
        let a = ds.cluster_of(&DenseVector::from([0.1, 0.1]), t);
        let b = ds.cluster_of(&DenseVector::from([20.1, 20.1]), t);
        assert!(a.is_some() && b.is_some());
        assert_ne!(a, b);
    }

    #[test]
    fn outlier_region_is_unclustered() {
        let mut ds = DStream::new(cfg());
        feed_blobs(&mut ds, 600);
        assert_eq!(ds.cluster_of(&DenseVector::from([500.0, 500.0]), 6.0), None);
    }

    #[test]
    fn adjacent_dense_grids_connect() {
        let mut ds = DStream::new(cfg());
        // A 3-grid horizontal ribbon of dense cells (grid width 0.5).
        for i in 0..900 {
            let t = i as f64 / 100.0;
            let x = (i % 3) as f64 * 0.5 + 0.25; // grids 0,1,2
            ds.insert(&DenseVector::from([x, 0.25]), t);
        }
        assert_eq!(ds.n_clusters(9.0), 1, "ribbon should be one cluster");
    }

    #[test]
    fn sporadic_grids_are_removed() {
        let mut ds = DStream::new(cfg());
        ds.insert(&DenseVector::from([99.0, 99.0]), 0.0);
        let before = ds.n_summaries();
        // Lots of traffic elsewhere, later on: the lone grid decays.
        for i in 0..20_000 {
            let t = 100.0 + i as f64 / 100.0;
            ds.insert(&DenseVector::from([0.0, 0.0]), t);
        }
        assert!(before >= 1);
        // The sporadic grid at (99,99) must be gone.
        let key: Vec<i32> = vec![99, 99];
        assert!(!ds.grids.contains_key(key.as_slice()));
    }

    #[test]
    fn summaries_grow_with_occupied_space() {
        let mut ds = DStream::new(cfg());
        for i in 0..50 {
            ds.insert(&DenseVector::from([i as f64 * 5.0, 0.0]), i as f64 / 100.0);
        }
        assert_eq!(ds.n_summaries(), 50, "each far point occupies its own grid");
    }
}
