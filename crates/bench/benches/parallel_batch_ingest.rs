//! Batch-ingest throughput: serial per-point loop vs. the two-phase
//! probe-then-commit pipeline, across a threads × shards matrix.
//!
//! The scenario is the steady state the paper's throughput claims rest
//! on: a large reservoir of cells (every point absorbed, nothing created
//! or recycled mid-batch), where per-point cost is dominated by the
//! assignment probe — exactly the phase `ingest_threads` fans out. The
//! space is 8-dimensional with r-separated seeds crowded eight to a
//! bucket: the high-dimensional regime of the paper's datasets (KDD
//! d = 34, PAMAP2 d = 51), where the grid degenerates to occupied-bucket
//! sweeps and a probe costs microseconds — the work worth fanning out.
//! Batch sizes 64/256/1024 bracket the dispatch-amortization question:
//! the persistent pool parks its workers between rounds, so small
//! batches price a condvar wake instead of a thread spawn.
//!
//! The shards axis (1 vs 4) is the commit side of the same question:
//! with `shards > 1` the committer fans phase-2 absorbs out in
//! shard-owned waves, so `threads×shards = 4×4` is the full pipeline —
//! parallel probes *and* parallel commits — while `4×1` isolates the
//! probe fan-out alone. Each entry records the waves its run formed
//! (`commit_waves`), so a configuration that silently fell back to the
//! serial commit loop is visible in the artifact.
//!
//! Besides the console table, the run rewrites the `parallel_batch_ingest`
//! (and `host`) sections of the committed `BENCH_ingest.json` via
//! [`edm_bench::report::merge_bench_json`], so the perf trajectory is
//! tracked machine-readably across PRs. **Read the `host.cpus` field
//! before reading speedups**: on a single-core container the fan-out
//! cannot beat the serial loop (the numbers then price the coordination
//! overhead); the ≥ 1.5× scaling claim is for `cpus ≥ 4`.
//!
//! The scenario generators live in [`edm_bench::scenarios`], shared with
//! the `bench_regression` CI gate so its fresh smoke runs measure
//! exactly the workload this baseline recorded.

use std::path::Path;
use std::time::Instant;

use edm_bench::report::merge_bench_json;
use edm_bench::scenarios::{self, CROWDED_CELLS as RESERVOIR_CELLS};
use edm_common::point::DenseVector;

/// Points pushed through each (threads, shards, batch) configuration.
const POINTS_PER_CONFIG: usize = 1 << 16;

struct Run {
    threads: usize,
    shards: usize,
    batch: usize,
    points_per_sec: f64,
    revalidation_rate: f64,
    commit_waves: u64,
}

/// Streams `POINTS_PER_CONFIG` points through `insert_batch` in batches
/// of `batch`, timing only the ingest calls.
fn measure(threads: usize, shards: usize, batch: usize) -> Run {
    let (mut e, mut t) = scenarios::crowded_engine_sharded(threads, shards);
    let sites = scenarios::crowded_probe_sites();
    let mut i = 0usize;
    let mut make_batch = |n: usize, t: &mut f64| -> Vec<(DenseVector, f64)> {
        (0..n)
            .map(|_| {
                *t += 1e-6;
                i += 1;
                (sites[i % sites.len()].clone(), *t)
            })
            .collect()
    };
    // Warm the pool (first parallel round sizes the slot buffers).
    let warm = make_batch(batch, &mut t);
    e.insert_batch(&warm);
    let rounds = POINTS_PER_CONFIG / batch;
    let batches: Vec<Vec<(DenseVector, f64)>> =
        (0..rounds).map(|_| make_batch(batch, &mut t)).collect();
    let reval_before = e.stats().probe_revalidations;
    let tasks_before = e.stats().probe_tasks;
    let waves_before = e.stats().commit_waves;
    let start = Instant::now();
    for b in &batches {
        e.insert_batch(b);
    }
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(e.n_cells(), RESERVOIR_CELLS, "bench stream must not create or recycle cells");
    let tasks = (e.stats().probe_tasks - tasks_before).max(1);
    Run {
        threads,
        shards,
        batch,
        points_per_sec: (rounds * batch) as f64 / elapsed,
        revalidation_rate: (e.stats().probe_revalidations - reval_before) as f64 / tasks as f64,
        commit_waves: e.stats().commit_waves - waves_before,
    }
}

fn main() {
    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "parallel_batch_ingest: {RESERVOIR_CELLS} reservoir cells, \
         {POINTS_PER_CONFIG} points/config, {cpus} cpu(s) available"
    );
    let mut runs: Vec<Run> = Vec::new();
    for &shards in &[1usize, 4] {
        for &batch in &[64usize, 256, 1024] {
            for &threads in &[1usize, 2, 4] {
                let run = measure(threads, shards, batch);
                println!(
                    "parallel_batch_ingest/threads{}/shards{}/batch{}: {:.0} points/s \
                     (reval {:.4}, {} waves)",
                    run.threads,
                    run.shards,
                    run.batch,
                    run.points_per_sec,
                    run.revalidation_rate,
                    run.commit_waves
                );
                runs.push(run);
            }
        }
    }
    let serial_base = |shards: usize, batch: usize| -> f64 {
        runs.iter()
            .find(|r| r.threads == 1 && r.shards == shards && r.batch == batch)
            .expect("serial baseline measured")
            .points_per_sec
    };
    for &shards in &[1usize, 4] {
        for &batch in &[64usize, 256, 1024] {
            let base = serial_base(shards, batch);
            for r in runs.iter().filter(|r| r.shards == shards && r.batch == batch && r.threads > 1)
            {
                println!(
                    "  speedup threads{} shards{} batch{}: {:.2}x vs serial",
                    r.threads,
                    shards,
                    batch,
                    r.points_per_sec / base
                );
            }
        }
    }

    // Machine-readable artifact (committed at the repo root).
    let entries: Vec<String> = runs
        .iter()
        .map(|r| {
            let base = serial_base(r.shards, r.batch);
            format!(
                "{{\"threads\": {}, \"shards\": {}, \"batch\": {}, \"reservoir_cells\": {}, \
                 \"points_per_sec\": {:.0}, \"speedup_vs_serial\": {:.3}, \
                 \"revalidation_rate\": {:.5}, \"commit_waves\": {}}}",
                r.threads,
                r.shards,
                r.batch,
                RESERVOIR_CELLS,
                r.points_per_sec,
                r.points_per_sec / base,
                r.revalidation_rate,
                r.commit_waves
            )
        })
        .collect();
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join("BENCH_ingest.json");
    merge_bench_json(&path, "host", &format!("{{\"cpus\": {cpus}}}")).expect("write bench json");
    merge_bench_json(&path, "parallel_batch_ingest", &format!("[{}]", entries.join(", ")))
        .expect("write bench json");
    println!("[written {}]", path.display());
}
