//! Network serving demo: the SDS stream ingested through the serving
//! tier while a TCP client queries it over loopback — §6.3.1's remote
//! monitoring application as a running program.
//!
//! The server side is three lines on top of `serve_live`: bind a
//! [`NetServer`] to a [`ServeHandle`] and every published snapshot is
//! queryable over the wire. The client side here uses the bundled
//! [`NetClient`], but the protocol is deliberately trivial — a 4-byte
//! big-endian length prefix framing one JSON object per request and
//! response — so `nc`, a Python script, or a dashboard can speak it
//! without linking this crate. In-process and remote answers are
//! identical by construction: both sides funnel into
//! `ServeHandle::execute`.
//!
//! ```text
//! cargo run --release --example serve_net
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use edmstream::data::gen::sds::{self, SdsConfig};
use edmstream::serve::net::{NetClient, NetConfig, NetServer};
use edmstream::serve::{BackpressurePolicy, EdmServer, ServeConfig};
use edmstream::{DecayModel, DenseVector, EdmConfig, EdmStream, Euclidean, Query, QueryResponse};

fn main() {
    let stream = sds::generate(&SdsConfig::default());
    println!("SDS: {} points over {:.0} seconds\n", stream.len(), stream.duration());

    // Same engine and serving parameters as the serve_live example.
    let cfg = EdmConfig::builder(0.3)
        .decay(DecayModel::new(0.998, 200.0))
        .beta(3e-3)
        .rate(1_000.0)
        .recycle_horizon(5.0)
        .tau_every(128)
        .build()
        .expect("valid SDS configuration");
    let serve_cfg = ServeConfig::builder()
        .queue_capacity(32)
        .publish_every_batches(4)
        .policy(BackpressurePolicy::Block)
        .build()
        .expect("valid serving configuration");
    let server = EdmServer::spawn(EdmStream::new(cfg, Euclidean), serve_cfg);

    // Expose the handle over loopback TCP. Port 0 lets the OS pick; a
    // real deployment would pin the address and raise the limits.
    let net_cfg = NetConfig::builder()
        .addr("127.0.0.1:0")
        .max_connections(8)
        .reader_threads(2)
        .read_timeout(Duration::from_secs(30))
        .build()
        .expect("valid network configuration");
    let net = NetServer::bind(server.handle(), net_cfg).expect("bind loopback");
    let addr = net.local_addr();
    println!("serving on {addr}\n");

    // A monitoring client polls over TCP while the stream plays in; the
    // producer flips `done` once the replay is drained.
    let done = Arc::new(AtomicBool::new(false));
    let monitor = {
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut client: NetClient = NetClient::connect(addr).expect("connect");
            let mut seen = Vec::new();
            let mut last_generation = 0u64;
            while !done.load(Ordering::Relaxed) {
                match client.query::<DenseVector>(&Query::Generation) {
                    Ok(QueryResponse::Generation(g)) if g != last_generation => {
                        last_generation = g;
                        let n = match client.query::<DenseVector>(&Query::NClusters) {
                            Ok(QueryResponse::NClusters(n)) => n,
                            other => panic!("unexpected n_clusters answer: {other:?}"),
                        };
                        let probe = Query::ClusterOf { point: DenseVector::from([10.0, 0.0]) };
                        let at_c = client.query::<DenseVector>(&probe);
                        seen.push((g, n, format!("{at_c:?}")));
                    }
                    Ok(_) => std::thread::sleep(Duration::from_millis(2)),
                    Err(e) => return (seen, Some(e.to_string())),
                }
            }
            (seen, None)
        })
    };

    // Producer: replay SDS in 64-point batches through the queue.
    let batches: Vec<Vec<(DenseVector, f64)>> = stream
        .iter()
        .map(|p| (p.payload.clone(), p.ts))
        .collect::<Vec<_>>()
        .chunks(64)
        .map(<[_]>::to_vec)
        .collect();
    for batch in batches {
        server.ingest(batch).expect("Block policy ingest");
    }
    done.store(true, Ordering::Relaxed);

    let (seen, err) = monitor.join().expect("monitor thread ok");
    if let Some(e) = err {
        println!("monitor stopped early: {e}");
    }
    println!("monitor observed {} generations over TCP; last three:", seen.len());
    for (g, n, probe) in seen.iter().rev().take(3).rev() {
        println!("  gen {g}: {n} clusters, probe(10,0) -> {probe}");
    }

    let handle = server.handle();
    server.shutdown().expect("clean shutdown");
    net.shutdown();

    let stats = handle.stats();
    println!("\nnetwork statistics after the drain:");
    println!("  connections accepted  : {}", stats.net_connections);
    println!("  connections rejected  : {}", stats.net_connections_rejected);
    println!("  queries answered      : {}", stats.net_queries);
    println!("  query errors          : {}", stats.net_query_errors);
    println!("  protocol errors       : {}", stats.net_protocol_errors);
}
