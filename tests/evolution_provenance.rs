//! Provenance test suite: the evolution subsystem's lineage and digest
//! answers must agree with a brute-force replay of the raw event log.
//!
//! Two independent oracles lock the tentpole down:
//!
//! 1. **Replay maps** — a from-scratch fold of the drained events into
//!    plain `born`/`ended` maps (sharing no code with `LineageGraph`),
//!    against which every `lineage_of` answer is checked edge by edge:
//!    the ancestry chain terminates at a recorded birth, every split
//!    parent and merge survivor matches the `EventKind` history, and the
//!    current-identity walk equals the transitive merge chain.
//! 2. **Digest algebra** — `digest(g1→g2) ⊎ digest(g2→g3)` must equal
//!    `digest(g1→g3)` exactly (disjoint unions — cluster ids are never
//!    reused), for every generation triple the run produced.
//!
//! Both properties are driven over random streams, with recycling
//! interleavings on and off, across the Grid, CoverTree, and sharded-Grid
//! backends. Deterministic companions below the proptest block pin the
//! typed-error contract: disabled tracking, lossy windows, evicted
//! generations, and cursor-past-eviction detection.

use std::collections::BTreeMap;
use std::num::NonZeroUsize;

use edmstream::{
    BirthKind, ClusterId, DenseVector, EdmConfig, EdmStream, EndKind, Euclidean, Event, EventKind,
    EvolveError, LineageGraph, NeighborIndexKind,
};
use proptest::prelude::*;

fn engine(
    kind: NeighborIndexKind,
    shards: usize,
    recycle: bool,
) -> EdmStream<DenseVector, Euclidean> {
    let mut b = EdmConfig::builder(0.8)
        .rate(100.0)
        .beta_for_threshold(3.0)
        .init_points(25)
        .tau_every(16)
        .maintenance_every(8)
        .neighbor_index(kind)
        .shards(NonZeroUsize::new(shards).expect("nonzero shard count"));
    if recycle {
        b = b.recycle_horizon(5.0);
    }
    EdmStream::new(b.build().expect("valid test configuration"), Euclidean)
}

/// Brute-force fold of the raw event log into birth/end maps — the
/// independent oracle the lineage answers are checked against.
#[derive(Default)]
struct Replay {
    born: BTreeMap<ClusterId, (f64, BirthKind)>,
    ended: BTreeMap<ClusterId, (f64, EndKind)>,
}

impl Replay {
    fn from_events(events: &[Event]) -> Self {
        let mut r = Replay::default();
        for e in events {
            match &e.kind {
                EventKind::Emerge { cluster } => {
                    r.born.entry(*cluster).or_insert((e.t, BirthKind::Emerged));
                }
                EventKind::Split { from, into } => {
                    for c in into {
                        r.born.entry(*c).or_insert((e.t, BirthKind::SplitFrom { parent: *from }));
                    }
                }
                EventKind::Merge { from, into } => {
                    for c in from {
                        r.ended.entry(*c).or_insert((e.t, EndKind::MergedInto { survivor: *into }));
                    }
                }
                EventKind::Disappear { cluster } => {
                    r.ended.entry(*cluster).or_insert((e.t, EndKind::Disappeared));
                }
                EventKind::Adjust { .. } => {}
            }
        }
        r
    }

    /// The transitive merge chain from `c`: the survivors hopped through,
    /// and whether the final identity is alive.
    fn merge_chain(&self, c: ClusterId) -> (Vec<ClusterId>, ClusterId, bool) {
        let mut hops = Vec::new();
        let mut cur = c;
        while let Some(&(_, EndKind::MergedInto { survivor })) = self.ended.get(&cur) {
            hops.push(survivor);
            cur = survivor;
        }
        (hops, cur, !self.ended.contains_key(&cur))
    }
}

/// Runs `points` through the engine, draining the raw event log as we go
/// (user drains must never disturb the tracker) and sealing a generation
/// every `publish_every` points. Returns the accumulated raw log.
fn drive(
    e: &mut EdmStream<DenseVector, Euclidean>,
    points: &[(f64, f64, bool)],
    publish_every: usize,
) -> Vec<Event> {
    let mut raw = Vec::new();
    let mut t = 0.0;
    // `events_evicted` counts drains as well as overflow; overflow is the
    // difference between it and what we have deliberately taken.
    let mut drained = 0u64;
    for (i, &(x, y, jump)) in points.iter().enumerate() {
        t += if jump { 7.0 } else { 0.01 };
        e.insert(&DenseVector::from([x, y]), t);
        if i % 3 == 0 {
            assert_eq!(e.events_evicted(), drained, "raw log overflowed mid-drive");
            let taken = e.take_events();
            drained += taken.len() as u64;
            raw.extend(taken);
        }
        if (i + 1) % publish_every == 0 {
            e.publish_snapshot(t);
        }
    }
    e.force_init();
    e.publish_snapshot(t);
    assert_eq!(e.events_evicted(), drained, "raw log overflowed mid-drive");
    raw.extend(e.take_events());
    raw
}

/// Checks every `lineage_of` answer against the replay maps.
fn assert_lineage_matches_replay(e: &EdmStream<DenseVector, Euclidean>, replay: &Replay) {
    // The graph knows exactly the ids the raw log ever bore.
    let graph_ids: Vec<ClusterId> = e.lineage_graph().nodes().map(|n| n.cluster).collect();
    let replay_ids: Vec<ClusterId> = replay.born.keys().copied().collect();
    assert_eq!(graph_ids, replay_ids, "lineage graph and raw replay disagree on cluster ids");

    for &id in &replay_ids {
        let lineage = e.lineage_of(id).expect("lossless run must answer lineage");
        assert_eq!(lineage.cluster, id);
        assert_eq!(lineage.ancestry[0].cluster, id, "ancestry must start at the queried id");

        // Every ancestry hop is a recorded split edge; the chain ends at a
        // recorded emergence.
        for (i, node) in lineage.ancestry.iter().enumerate() {
            let &(born_t, birth) = replay.born.get(&node.cluster).expect("ancestor recorded");
            assert_eq!((node.born, node.birth), (born_t, birth), "birth edge mismatch");
            let expect_end = replay.ended.get(&node.cluster).copied();
            assert_eq!(
                node.end.map(|end| (end.t, end.kind)),
                expect_end,
                "end edge mismatch for cluster {}",
                node.cluster
            );
            match birth {
                BirthKind::SplitFrom { parent } => {
                    assert!(parent < node.cluster, "split parents must predate fragments");
                    assert_eq!(
                        lineage.ancestry.get(i + 1).map(|n| n.cluster),
                        Some(parent),
                        "ancestry must step through the split parent"
                    );
                }
                BirthKind::Emerged => {
                    assert_eq!(i + 1, lineage.ancestry.len(), "chain must stop at an emergence");
                }
            }
        }

        // Current identity is the transitive merge chain, verbatim.
        let (hops, current, alive) = replay.merge_chain(id);
        assert_eq!(lineage.absorbed_into, hops, "merge hops mismatch for cluster {id}");
        assert_eq!(lineage.current, current, "current identity mismatch for cluster {id}");
        assert_eq!(lineage.alive, alive, "liveness mismatch for cluster {id}");
    }

    // The graph itself must equal a from-scratch replay of the raw log —
    // incremental syncs may not drift from the batch fold.
    assert_eq!(
        e.lineage_graph(),
        &LineageGraph::from_events(&replay_events(replay)),
        "incremental graph drifted from batch replay"
    );
}

/// Reconstructs a minimal event list from the replay maps (one event per
/// recorded edge) — enough for `LineageGraph::from_events` to rebuild the
/// same node set. Kept separate so the graph comparison doesn't reuse the
/// original slice by accident.
fn replay_events(replay: &Replay) -> Vec<Event> {
    let mut events = Vec::new();
    for (&c, &(t, birth)) in &replay.born {
        let kind = match birth {
            BirthKind::Emerged => EventKind::Emerge { cluster: c },
            BirthKind::SplitFrom { parent } => EventKind::Split { from: parent, into: vec![c] },
        };
        events.push(Event { t, kind });
    }
    for (&c, &(t, end)) in &replay.ended {
        let kind = match end {
            EndKind::Disappeared => EventKind::Disappear { cluster: c },
            EndKind::MergedInto { survivor } => EventKind::Merge { from: vec![c], into: survivor },
        };
        events.push(Event { t, kind });
    }
    // Replay order must be birth-before-end per id; sorting by time with
    // births first on ties achieves that (ends never precede births).
    events.sort_by(|a, b| {
        a.t.partial_cmp(&b.t).expect("no NaN times").then_with(|| {
            let rank = |e: &Event| {
                matches!(e.kind, EventKind::Merge { .. } | EventKind::Disappear { .. }) as u8
            };
            rank(a).cmp(&rank(b))
        })
    });
    events
}

/// Checks `digest(g1→g2) ⊎ digest(g2→g3) == digest(g1→g3)` for every
/// generation triple in the published window.
fn assert_digests_compose(e: &EdmStream<DenseVector, Euclidean>) {
    let Some((oldest, latest)) = e.digest_window().generations() else {
        return;
    };
    for g1 in oldest..=latest {
        for g2 in g1..=latest {
            for g3 in g2..=latest {
                let left = e.digest_between(g1, g2).expect("window held");
                let right = e.digest_between(g2, g3).expect("window held");
                let whole = e.digest_between(g1, g3).expect("window held");
                let cat = |a: &[ClusterId], b: &[ClusterId]| {
                    let mut v: Vec<ClusterId> = a.iter().chain(b).copied().collect();
                    v.sort_unstable();
                    v
                };
                assert_eq!(cat(&left.births, &right.births), whole.births, "births don't compose");
                assert_eq!(cat(&left.deaths, &right.deaths), whole.deaths, "deaths don't compose");
                assert_eq!(left.merges.len() + right.merges.len(), whole.merges.len());
                assert_eq!(left.splits.len() + right.splits.len(), whole.splits.len());
                assert_eq!(left.adjustments + right.adjustments, whole.adjustments);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Lineage answers agree with brute-force replay on random streams,
    /// with ΔT_del recycling interleavings, across all three index
    /// backends — and the digest algebra composes over every generation
    /// triple the run published.
    #[test]
    fn lineage_and_digests_agree_with_raw_replay(
        points in prop::collection::vec(
            ((-20.0f64..20.0), (-20.0f64..20.0), any::<bool>()),
            60..220,
        ),
        backend_ix in 0usize..3,
        recycle in any::<bool>(),
    ) {
        let (kind, shards) = [
            (NeighborIndexKind::Grid { side: None }, 1),
            (NeighborIndexKind::CoverTree, 1),
            (NeighborIndexKind::Grid { side: None }, 4),
        ][backend_ix];
        // Recycling off → drop the time jumps so the stream stays dense.
        let pts: Vec<(f64, f64, bool)> =
            points.iter().map(|&(x, y, j)| (x, y, j && recycle)).collect();
        let mut e = engine(kind, shards, recycle);
        let raw = drive(&mut e, &pts, 40);
        prop_assert_eq!(e.evolution_events_lost(), 0, "ample capacity must stay lossless");
        let replay = Replay::from_events(&raw);
        assert_lineage_matches_replay(&e, &replay);
        assert_digests_compose(&e);
    }

    /// The digest's event tally over the full published window equals the
    /// raw log's tally of post-first-publication events: nothing is
    /// dropped, nothing is double-counted.
    #[test]
    fn full_window_digest_tallies_the_raw_log(
        points in prop::collection::vec(
            ((-20.0f64..20.0), (-20.0f64..20.0), any::<bool>()),
            80..200,
        ),
    ) {
        let mut e = engine(NeighborIndexKind::Grid { side: None }, 1, true);
        // Publish generation 1 immediately so every structural event of
        // the run lands strictly inside the digest window (events before
        // the first sealed generation are outside any window).
        e.publish_snapshot(0.0);
        let raw = drive(&mut e, &points, 30);
        let (oldest, latest) = e.digest_window().generations().expect("published");
        prop_assert_eq!(oldest, 1);
        let d = e.digest_between(oldest, latest).expect("window held");
        let merges = raw.iter().filter(|e| matches!(e.kind, EventKind::Merge { .. })).count();
        let splits = raw.iter().filter(|e| matches!(e.kind, EventKind::Split { .. })).count();
        let adjusts = raw.iter().filter(|e| matches!(e.kind, EventKind::Adjust { .. })).count();
        prop_assert_eq!(d.merges.len(), merges);
        prop_assert_eq!(d.splits.len(), splits);
        prop_assert_eq!(d.adjustments as usize, adjusts);
        // Births = emergences + split fragments; deaths = disappearances
        // + merge victims.
        let births: usize = raw.iter().map(|e| match &e.kind {
            EventKind::Emerge { .. } => 1,
            EventKind::Split { into, .. } => into.len(),
            _ => 0,
        }).sum();
        let deaths: usize = raw.iter().map(|e| match &e.kind {
            EventKind::Disappear { .. } => 1,
            EventKind::Merge { from, .. } => from.len(),
            _ => 0,
        }).sum();
        prop_assert_eq!(d.births.len(), births);
        prop_assert_eq!(d.deaths.len(), deaths);
    }
}

/// Two far blobs: the smallest stream that reliably produces two clusters
/// (and thus multi-event diffs) right at initialization.
fn two_blob_points(n: usize) -> Vec<(DenseVector, f64)> {
    (0..n)
        .map(|i| {
            let x = if i % 2 == 0 { 0.0 } else { 12.0 };
            (DenseVector::from([x + 0.05 * (i % 5) as f64, 0.1 * (i % 3) as f64]), i as f64 / 100.0)
        })
        .collect()
}

#[test]
fn disabled_tracking_yields_typed_errors_not_guesses() {
    let cfg = EdmConfig::builder(0.8)
        .rate(100.0)
        .beta_for_threshold(3.0)
        .init_points(16)
        .track_evolution(false)
        .build()
        .expect("valid configuration");
    let mut e = EdmStream::new(cfg, Euclidean);
    for (p, t) in two_blob_points(64) {
        e.insert(&p, t);
    }
    e.publish_snapshot(0.64);
    assert_eq!(e.lineage_of(0), Err(EvolveError::EvolutionDisabled));
    assert_eq!(e.digest_since(1), Err(EvolveError::EvolutionDisabled));
    assert_eq!(e.digest_window().generations(), None);
}

#[test]
fn digest_window_errors_are_typed_and_ordered() {
    let cfg = EdmConfig::builder(0.8)
        .rate(100.0)
        .beta_for_threshold(3.0)
        .init_points(16)
        .digest_history(2)
        .build()
        .expect("valid configuration");
    let mut e = EdmStream::new(cfg, Euclidean);
    // Before any publication: no generations to digest over.
    assert_eq!(e.digest_since(1), Err(EvolveError::NoGenerations));
    for (p, t) in two_blob_points(64) {
        e.insert(&p, t);
    }
    for k in 0..5 {
        e.publish_snapshot(0.64 + k as f64 * 0.01);
    }
    // History holds 2 generations: 4 and 5.
    assert_eq!(e.digest_window().generations(), Some((4, 5)));
    assert_eq!(e.digest_between(4, 5).map(|d| (d.from_generation, d.to_generation)), Ok((4, 5)));
    assert_eq!(e.digest_since(1), Err(EvolveError::EvictedGeneration { requested: 1, oldest: 4 }));
    assert_eq!(e.digest_since(9), Err(EvolveError::FutureGeneration { requested: 9, latest: 5 }));
    assert_eq!(e.digest_between(5, 4), Err(EvolveError::InvertedWindow { from: 5, to: 4 }));
}

#[test]
fn event_loss_poisons_lineage_and_the_lossy_window_only() {
    // Capacity 1: initialization's multi-cluster diff pushes more than
    // one event in a single `run_diff`, evicting past the tracker's
    // cursor before it can sync — real, detected loss.
    let cfg = EdmConfig::builder(0.8)
        .rate(100.0)
        .beta_for_threshold(3.0)
        .init_points(16)
        .event_capacity(1)
        .build()
        .expect("valid configuration");
    let mut e = EdmStream::new(cfg, Euclidean);
    // Seal generation 1 while the stream is still empty, so the lossy
    // stretch lands strictly *inside* a digestible window (events sealed
    // into the very first generation a reader holds predate any window).
    e.publish_snapshot(0.0);
    for (p, t) in two_blob_points(64) {
        e.insert(&p, t);
    }
    assert!(e.evolution_events_lost() > 0, "capacity 1 must lose events in the init diff");
    // Lineage refuses outright: history is provably incomplete.
    assert_eq!(e.lineage_of(0), Err(EvolveError::EventsLost { lost: e.evolution_events_lost() }));
    // The un-gated graph stays readable for forensics.
    assert!(!e.lineage_graph().is_empty());

    // Generation 2 seals the lossy stretch and poisons exactly the
    // windows that contain it; later clean windows still answer.
    e.publish_snapshot(0.64);
    let lossy = e.digest_since(1);
    assert!(
        matches!(lossy, Err(EvolveError::LossyWindow { .. })),
        "digest over the lossy stretch must refuse, got {lossy:?}"
    );
    e.publish_snapshot(0.65);
    assert!(e.digest_between(2, 3).is_ok(), "clean window past the loss must answer");
    assert!(
        matches!(e.digest_since(1), Err(EvolveError::LossyWindow { .. })),
        "windows spanning the loss stay poisoned"
    );
}

#[test]
fn cursor_past_eviction_is_detectable_before_lineage_drops_history() {
    // A reader holding an old cursor can always detect eviction via
    // `events_evicted` before trusting `events_since` — the same signal
    // the tracker uses to refuse lineage.
    let cfg = EdmConfig::builder(0.8)
        .rate(100.0)
        .beta_for_threshold(3.0)
        .init_points(16)
        .event_capacity(1)
        .build()
        .expect("valid configuration");
    let mut e = EdmStream::new(cfg, Euclidean);
    let stale = e.event_cursor();
    assert_eq!(e.events_evicted(), 0);
    for (p, t) in two_blob_points(64) {
        e.insert(&p, t);
    }
    // The log wrapped: the stale cursor predates the evicted horizon, and
    // the counter says so before any `events_since` read — the number of
    // events the stale reader silently missed is exactly `evicted`.
    assert!(e.events_evicted() > 0, "capacity 1 must evict");
    let visible = e.events_since(stale);
    assert!(visible.len() <= 1, "capacity 1 buffers at most one event");
    assert!(
        e.events_evicted() >= e.evolution_events_lost(),
        "the tracker can never lose more than the log evicted"
    );
    // The engine-level gate reports the same condition as a typed error.
    assert!(matches!(e.lineage_of(0), Err(EvolveError::EventsLost { .. })));
}
