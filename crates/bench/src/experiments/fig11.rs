//! Fig 11 — accumulated dependency-update time under the three filter
//! configurations: `wf` (no filtering), `df` (density filter, Thm 1),
//! `df+tif` (plus the triangle-inequality filter, Thm 2).
//!
//! The engine instruments its dependency-maintenance phase with a
//! wall-clock accumulator; this experiment replays the same stream three
//! times and reports the accumulated milliseconds over stream length.
//! Expected shape: `wf` ≫ `df` > `df+tif`, with identical clustering
//! output (the theorems are exact — see the engine's
//! `filters_do_not_change_the_result` test).

use edm_common::metric::Euclidean;
use edm_core::{EdmStream, FilterConfig};

use super::Ctx;
use crate::catalog::{self, DatasetId};
use crate::report::{f, Report};

/// Regenerates Fig 11.
pub fn run(ctx: &Ctx) -> std::io::Result<()> {
    let mut rep = Report::new(
        "fig11_filter_ablation",
        &["dataset", "filters", "len_k", "accum_dep_ms", "candidates", "updates"],
        ctx.out_dir(),
    );
    for id in [DatasetId::Kdd, DatasetId::CoverType, DatasetId::Pamap2] {
        let ds = catalog::load(id, ctx.scale, 1_000.0);
        for filters in [FilterConfig::none(), FilterConfig::density_only(), FilterConfig::all()] {
            let cfg = ds
                .edm
                .to_builder()
                .filters(filters)
                .track_evolution(false) // isolate dependency-update cost
                .build()
                .expect("ablation config is valid");
            let mut engine = EdmStream::new(cfg, Euclidean);
            let n = ds.stream.len();
            let bucket = (n / 6).max(1);
            for (i, p) in ds.stream.iter().enumerate() {
                engine.insert(&p.payload, p.ts);
                if (i + 1) % bucket == 0 {
                    rep.row(vec![
                        ds.id.name(),
                        filters.label().into(),
                        format!("{}", (i + 1) / 1_000),
                        f(engine.stats().dep_update_millis(), 2),
                        engine.stats().dep_candidates.to_string(),
                        engine.stats().dep_updates.to_string(),
                    ]);
                }
            }
        }
    }
    rep.finish()
}
