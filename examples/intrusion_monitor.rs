//! Network-intrusion monitoring on the KDDCUP99 surrogate: maintain live
//! traffic clusters at 1k connections/sec and flag bursts that open new
//! dense regions (possible attacks) the moment their cluster emerges.
//!
//! ```text
//! cargo run --release --example intrusion_monitor
//! ```

use edmstream::data::gen::kdd::{self, KddConfig};
use edmstream::{EdmConfig, EdmStream, Euclidean, EventKind};

fn main() {
    let stream = kdd::generate(&KddConfig { n: 40_000, ..Default::default() });
    println!(
        "monitoring {} connection records ({} traffic classes, 34 features)\n",
        stream.len(),
        stream.n_classes
    );

    let cfg = EdmConfig::builder(100.0) // Table 2's r for KDDCUP99
        .rate(1_000.0)
        .build()
        .expect("valid KDD configuration");
    let mut engine = EdmStream::new(cfg, Euclidean);

    // The monitor consumes the event stream destructively: every alert is
    // raised exactly once, however often the loop polls.
    let mut alerts = 0usize;
    let mut last_t = 0.0;
    for p in stream.iter() {
        engine.insert(&p.payload, p.ts);
        last_t = p.ts;
        for ev in engine.take_events() {
            match &ev.kind {
                EventKind::Emerge { cluster } => {
                    alerts += 1;
                    println!(
                        "t={:6.1}s  ALERT: new dense traffic pattern (cluster {cluster}) — {} live clusters",
                        ev.t,
                        engine.n_clusters()
                    );
                }
                EventKind::Disappear { cluster } => {
                    println!("t={:6.1}s  pattern {cluster} subsided", ev.t);
                }
                _ => {}
            }
        }
    }

    let snap = engine.snapshot(last_t);
    println!("\nsummary:");
    println!("  emerge alerts raised: {alerts}");
    println!("  final live clusters:  {}", snap.n_clusters());
    println!(
        "  cells: {} active / {} reservoir (peak reservoir {})",
        snap.active_cells(),
        snap.reservoir_cells(),
        snap.reservoir_peak()
    );
    let s = engine.stats();
    println!(
        "  per-point work: {} absorbed, {} new cells, {:.1} ms total dependency maintenance",
        s.absorbed,
        s.new_cells,
        s.dep_update_millis()
    );
    println!(
        "  filters pruned {:.1}% of {} dependency candidates",
        100.0 * s.filter_rate(),
        s.dep_candidates
    );
}
