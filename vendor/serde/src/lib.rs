//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize` / `Deserialize` names the workspace imports —
//! as marker traits in the type namespace and as no-op derives in the
//! macro namespace, the same dual-name trick the real crate uses. Nothing
//! in the workspace serializes today; swap in the real crate when a data
//! format lands.

#![warn(missing_docs)]

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
