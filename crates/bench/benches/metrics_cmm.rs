//! Criterion bench: CMM evaluation cost over windows of increasing size
//! (the evaluation overhead of Fig 13).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use edm_common::metric::Euclidean;
use edm_data::gen::blobs::{sample_mixture, Blob};
use edm_metrics::cmm::{cmm, CmmConfig, EvalObject};

fn bench_cmm(c: &mut Criterion) {
    let blobs =
        vec![Blob::new(vec![0.0, 0.0], 0.5, 1.0, 0), Blob::new(vec![10.0, 0.0], 0.5, 1.0, 1)];
    let mut group = c.benchmark_group("cmm_window");
    group.sample_size(10);
    for n in [100usize, 300, 600] {
        let stream = sample_mixture("bench", &blobs, n, 1_000.0, 0.3, 11);
        let objs: Vec<EvalObject<'_, _>> = stream
            .points
            .iter()
            .enumerate()
            .map(|(i, p)| EvalObject {
                payload: &p.payload,
                weight: 1.0,
                class: p.label,
                // An imperfect clustering: every 13th point missed.
                cluster: if i % 13 == 0 { None } else { p.label.map(|l| l as usize) },
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &objs, |b, objs| {
            b.iter(|| cmm(objs, &Euclidean, &CmmConfig::default()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cmm);
criterion_main!(benches);
