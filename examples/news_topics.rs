//! News-topic monitoring over a token-set stream (the paper's §6.2.2 use
//! case): cluster headlines under Jaccard distance and report topic
//! births, deaths, splits and merges as they happen.
//!
//! ```text
//! cargo run --release --example news_topics
//! ```

use edmstream::data::gen::nads::{self, NadsConfig};
use edmstream::{EdmConfig, EdmStream, EventKind, Jaccard, TauMode};

fn main() {
    let ncfg = NadsConfig { n: 60_000, ..Default::default() };
    let stream = nads::generate(&ncfg);
    println!(
        "streaming {} headlines over {} calendar days ({} topics in ground truth)\n",
        stream.len(),
        nads::DAYS,
        stream.n_classes
    );

    // Engine over token sets: see DESIGN.md for the NADS parameterization.
    let rate = stream.len() as f64 / (nads::DAYS * ncfg.seconds_per_day);
    let decay = edmstream::DecayModel::new(0.998, 60.0);
    let cfg = EdmConfig::builder(0.4)
        .decay(decay)
        .rate(rate)
        .beta(3.0 * (1.0 - decay.retention()) / rate)
        .init_points(500)
        .recycle_horizon(5.0 * ncfg.seconds_per_day)
        .tau_mode(TauMode::Static(0.75))
        // Token sets have no coordinate embedding, so the grid index
        // cannot prune Jaccard space; ask for the exact scan outright
        // (the default grid would degrade to the same behavior).
        .neighbor_index(edmstream::NeighborIndexKind::LinearScan)
        .build()
        .expect("valid NADS configuration");
    let mut engine = EdmStream::new(cfg, Jaccard);

    // Non-destructive incremental reads: a cursor remembers where this
    // consumer got to, so other readers could drain independently.
    let mut cursor = edmstream::EventCursor::START;
    let mut last_day_report = 0i64;
    for p in stream.iter() {
        engine.insert(&p.payload, p.ts);
        // Print structural events as the stream plays.
        let fresh = engine.events_since(cursor);
        cursor = engine.event_cursor();
        for ev in &fresh {
            let day = nads::day_of(ev.t, &ncfg);
            match &ev.kind {
                EventKind::Split { from, into } => {
                    println!(
                        "[{}] topic split: cluster {from} -> new {into:?}",
                        nads::format_day(day)
                    );
                }
                EventKind::Merge { from, into } => {
                    println!("[{}] topics merged: {from:?} -> {into}", nads::format_day(day));
                }
                _ => {}
            }
        }
        // A compact daily status line (every 10 days).
        let day = nads::day_of(p.ts, &ncfg) as i64;
        if day >= last_day_report + 10 {
            last_day_report = day;
            println!(
                "[{}] tracking {} live topics over {} active story-cells",
                nads::format_day(day as f64),
                engine.n_clusters(),
                engine.active_len()
            );
        }
    }
    println!(
        "\ndone: {} headlines, {} evolution events, final topic count {}",
        engine.stats().points,
        engine.events_recorded(),
        engine.n_clusters()
    );
}
