//! Property tests for the chunked distance kernels: every fast path —
//! squared, upper-bounded, batched — must be observationally equivalent
//! to the plain [`Metric::dist`] the engine's tie-breaks are defined
//! against. The strategies sweep dimensionalities across and between the
//! monomorphized chunk counts (including non-multiples of the 4-lane
//! width) and value magnitudes from subnormal-adjacent to 1e12, staying
//! NaN-free as the engine's payload contract requires.

use edm_common::metric::{Euclidean, Metric};
use edm_common::point::DenseVector;
use proptest::prelude::*;

/// One coordinate: a base in (-1, 1) stretched to one of four magnitude
/// bands (huge, ordinary, tiny, exact zero) — the diversity `prop_oneof`
/// would provide, expressed through the offline stand-in's primitives.
fn stretch(base: f64, band: u32) -> f64 {
    base * [1e12, 100.0, 1e-9, 0.0][band as usize % 4]
}

/// A pair of equal-dimension vectors, dimension 1..=67 — crossing every
/// monomorphized chunk count (8, 16, 32, 48 lanes) and the general path,
/// with every tail length against the 4-lane kernel width.
fn vec_pair() -> impl Strategy<Value = (DenseVector, DenseVector)> {
    prop::collection::vec((-1.0f64..1.0, 0u32..4, -1.0f64..1.0, 0u32..4), 1..68).prop_map(|lanes| {
        let (a, b): (Vec<f64>, Vec<f64>) =
            lanes.into_iter().map(|(xa, ba, xb, bb)| (stretch(xa, ba), stretch(xb, bb))).unzip();
        (DenseVector::from(a), DenseVector::from(b))
    })
}

proptest! {
    /// `dist` is defined as the square root of the chunked squared
    /// kernel, and the kernel must agree with a plain scalar
    /// accumulation up to reassociation rounding.
    #[test]
    fn squared_kernel_matches_the_scalar_sum((a, b) in vec_pair()) {
        let sq = Euclidean.dist_sq(&a, &b);
        let scalar: f64 = a
            .coords()
            .iter()
            .zip(b.coords().iter())
            .map(|(x, y)| (x - y) * (x - y))
            .sum();
        prop_assert!(
            (sq - scalar).abs() <= 1e-12 * scalar.max(1.0),
            "chunked {sq} vs scalar {scalar}"
        );
        prop_assert_eq!(Euclidean.dist(&a, &b).to_bits(), sq.sqrt().to_bits());
    }

    /// The bounded kernel's contract: exact (bit-identical to `dist`)
    /// whenever the result lands within the bound; past the bound the
    /// value must still be a sound lower bound on the true distance while
    /// provably exceeding the bound — the two halves the pruning sites
    /// rely on.
    #[test]
    fn bounded_kernel_is_exact_within_and_sound_past_the_bound(
        (a, b) in vec_pair(),
        sel in 0u32..3,
        scale in 0.25f64..2.0,
    ) {
        let exact = Euclidean.dist(&a, &b);
        let bound = match sel {
            0 => 0.0,
            1 => exact * scale,
            _ => f64::INFINITY,
        };
        let got = Euclidean.dist_upper_bounded(&a, &b, bound);
        if got <= bound {
            prop_assert_eq!(got.to_bits(), exact.to_bits(), "within-bound values must be exact");
        } else {
            prop_assert!(got <= exact, "past the bound the value must lower-bound the distance");
        }
        // Whenever the true distance is within the bound, the kernel may
        // not bail early at all.
        if exact <= bound {
            prop_assert_eq!(got.to_bits(), exact.to_bits());
        }
    }

    /// The batched kernel must be indistinguishable from per-item `dist`,
    /// bit for bit, and must fully overwrite whatever the reused output
    /// buffer held.
    #[test]
    fn batched_kernel_matches_per_item_dist(
        (q, other) in vec_pair(),
        n in 0usize..12,
        stale in 0usize..4,
    ) {
        let dim = q.coords().len();
        let mut items: Vec<DenseVector> = (0..n)
            .map(|i| {
                DenseVector::from(
                    (0..dim).map(|k| (i * 7 + k) as f64 * 0.37 - 2.0).collect::<Vec<f64>>(),
                )
            })
            .collect();
        items.push(other);
        let refs: Vec<&DenseVector> = items.iter().collect();
        let mut out = vec![f64::NAN; stale];
        Euclidean.dist_batch(&q, &refs, &mut out);
        prop_assert_eq!(out.len(), refs.len());
        for (i, p) in refs.iter().enumerate() {
            prop_assert_eq!(out[i].to_bits(), Euclidean.dist(&q, p).to_bits());
        }
    }
}
