//! Evolution-quality scoring: how faithfully a stream clusterer's
//! reported transitions (births, deaths, merges, splits) track a
//! reference narrative.
//!
//! The paper's §5 claim is qualitative — EDMStream *sees* the density
//! mountain merge and split where point-in-time clusterers only see the
//! before and after. This module makes the claim measurable, for any
//! [`edm_data::clusterer::StreamClusterer`]: derive a transition
//! timeline from periodic probe-point labelings
//! ([`partition_transitions`]), then score it against a reference
//! timeline with tolerance-windowed matching ([`match_transitions`]).
//! EDMStream's own event log maps directly onto [`Transition`]s; the
//! four baselines get theirs derived from their labelings — the same
//! yardstick for all five.

use edm_common::time::Timestamp;
use serde::{Deserialize, Serialize};

/// The identity-changing transition kinds (membership adjustments are
/// not scored — every clusterer reshuffles members constantly).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TransitionKind {
    /// A cluster appeared with no predecessor.
    Birth,
    /// A cluster vanished with no successor.
    Death,
    /// Two or more clusters fused into one.
    Merge,
    /// One cluster broke into two or more.
    Split,
}

/// One observed (or reference) transition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Transition {
    /// Stream time of the transition.
    pub t: Timestamp,
    /// What kind of transition.
    pub kind: TransitionKind,
}

/// Outcome of matching an observed timeline against a reference.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransitionScore {
    /// Reference transitions that found an observed partner in time and
    /// kind.
    pub matched: usize,
    /// Total reference transitions.
    pub reference: usize,
    /// Total observed transitions.
    pub observed: usize,
}

impl TransitionScore {
    /// Fraction of observed transitions that correspond to a reference
    /// one (1.0 when nothing spurious was reported; 1.0 on an empty
    /// observation by convention).
    pub fn precision(&self) -> f64 {
        if self.observed == 0 {
            1.0
        } else {
            self.matched as f64 / self.observed as f64
        }
    }

    /// Fraction of reference transitions the observer caught (1.0 on an
    /// empty reference by convention).
    pub fn recall(&self) -> f64 {
        if self.reference == 0 {
            1.0
        } else {
            self.matched as f64 / self.reference as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Matches `observed` transitions against `reference` ones: same kind,
/// within `tolerance` stream seconds, each transition used at most once,
/// greedily in time order (both slices are sorted internally). The
/// tolerance absorbs cadence skew — a clusterer that only re-partitions
/// every K points necessarily reports a merge late.
pub fn match_transitions(
    reference: &[Transition],
    observed: &[Transition],
    tolerance: f64,
) -> TransitionScore {
    let mut matched = 0usize;
    for kind in
        [TransitionKind::Birth, TransitionKind::Death, TransitionKind::Merge, TransitionKind::Split]
    {
        let mut refs: Vec<f64> = reference.iter().filter(|x| x.kind == kind).map(|x| x.t).collect();
        let mut obs: Vec<f64> = observed.iter().filter(|x| x.kind == kind).map(|x| x.t).collect();
        refs.sort_by(|a, b| a.partial_cmp(b).expect("transition time NaN"));
        obs.sort_by(|a, b| a.partial_cmp(b).expect("transition time NaN"));
        // Two-pointer greedy: earliest unmatched pair within tolerance.
        let (mut i, mut j) = (0, 0);
        while i < refs.len() && j < obs.len() {
            let dt = obs[j] - refs[i];
            if dt.abs() <= tolerance {
                matched += 1;
                i += 1;
                j += 1;
            } else if dt < 0.0 {
                j += 1; // observation too early for this reference
            } else {
                i += 1; // reference missed: observation already too late
            }
        }
    }
    TransitionScore { matched, reference: reference.len(), observed: observed.len() }
}

/// Derives a transition timeline from periodic labelings of a fixed
/// probe-point set: `checkpoints` holds `(t, labels)` pairs where
/// `labels[i]` is the cluster (algorithm-local id) of probe `i` at `t`,
/// `None` = unclustered. Works for any clusterer that can answer
/// `cluster_of` — the baselines' timelines come from exactly this.
///
/// Between consecutive checkpoints, clusters are identity-matched by
/// greedy maximum probe overlap (the same MONIC-style notion the engine's
/// registry uses): an unmatched new cluster whose members came mostly
/// from a surviving old one is a [`TransitionKind::Split`], otherwise a
/// [`TransitionKind::Birth`]; an unmatched old cluster whose members
/// mostly flowed into a surviving new one is a [`TransitionKind::Merge`],
/// otherwise a [`TransitionKind::Death`].
pub fn partition_transitions(checkpoints: &[(Timestamp, Vec<Option<usize>>)]) -> Vec<Transition> {
    let mut out = Vec::new();
    for pair in checkpoints.windows(2) {
        let (_, prev) = &pair[0];
        let (t, next) = &pair[1];
        assert_eq!(prev.len(), next.len(), "checkpoints must label the same probe set");

        // Overlap votes: (old label, new label) -> probes shared.
        let mut votes: std::collections::BTreeMap<(usize, usize), usize> = Default::default();
        let mut old_sizes: std::collections::BTreeMap<usize, usize> = Default::default();
        let mut new_sizes: std::collections::BTreeMap<usize, usize> = Default::default();
        for (o, n) in prev.iter().zip(next) {
            if let Some(o) = o {
                *old_sizes.entry(*o).or_insert(0) += 1;
            }
            if let Some(n) = n {
                *new_sizes.entry(*n).or_insert(0) += 1;
            }
            if let (Some(o), Some(n)) = (o, n) {
                *votes.entry((*o, *n)).or_insert(0) += 1;
            }
        }

        // Greedy max-overlap matching, deterministic order.
        let mut claims: Vec<(usize, usize, usize)> =
            votes.iter().map(|(&(o, n), &v)| (v, o, n)).collect();
        claims.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
        let mut old_matched: std::collections::BTreeSet<usize> = Default::default();
        let mut new_matched: std::collections::BTreeSet<usize> = Default::default();
        for (_, o, n) in claims {
            if !old_matched.contains(&o) && !new_matched.contains(&n) {
                old_matched.insert(o);
                new_matched.insert(n);
            }
        }

        // Unmatched new clusters: Split if their dominant parent survived
        // the matching, Birth otherwise.
        for &n in new_sizes.keys() {
            if new_matched.contains(&n) {
                continue;
            }
            let parent = votes
                .iter()
                .filter(|(&(_, vn), _)| vn == n)
                .max_by_key(|(&(o, _), &v)| (v, usize::MAX - o))
                .map(|(&(o, _), _)| o);
            let kind = match parent {
                Some(o) if old_matched.contains(&o) => TransitionKind::Split,
                _ => TransitionKind::Birth,
            };
            out.push(Transition { t: *t, kind });
        }

        // Unmatched old clusters: Merge if their members mostly flowed
        // into a surviving new cluster, Death otherwise.
        for &o in old_sizes.keys() {
            if old_matched.contains(&o) {
                continue;
            }
            let heir = votes
                .iter()
                .filter(|(&(vo, _), _)| vo == o)
                .max_by_key(|(&(_, n), &v)| (v, usize::MAX - n))
                .map(|(&(_, n), _)| n);
            let kind = match heir {
                Some(n) if new_matched.contains(&n) => TransitionKind::Merge,
                _ => TransitionKind::Death,
            };
            out.push(Transition { t: *t, kind });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tr(t: f64, kind: TransitionKind) -> Transition {
        Transition { t, kind }
    }

    #[test]
    fn perfect_timeline_scores_one() {
        let reference = [tr(1.0, TransitionKind::Birth), tr(5.0, TransitionKind::Merge)];
        let s = match_transitions(&reference, &reference, 0.5);
        assert_eq!(s.matched, 2);
        assert_eq!(s.precision(), 1.0);
        assert_eq!(s.recall(), 1.0);
        assert_eq!(s.f1(), 1.0);
    }

    #[test]
    fn tolerance_absorbs_cadence_skew_but_not_more() {
        let reference = [tr(5.0, TransitionKind::Merge)];
        let late = [tr(5.8, TransitionKind::Merge)];
        assert_eq!(match_transitions(&reference, &late, 1.0).matched, 1);
        assert_eq!(match_transitions(&reference, &late, 0.5).matched, 0);
    }

    #[test]
    fn kinds_never_cross_match() {
        let reference = [tr(5.0, TransitionKind::Merge)];
        let observed = [tr(5.0, TransitionKind::Split)];
        let s = match_transitions(&reference, &observed, 1.0);
        assert_eq!(s.matched, 0);
        assert_eq!(s.precision(), 0.0);
        assert_eq!(s.recall(), 0.0);
        assert_eq!(s.f1(), 0.0);
    }

    #[test]
    fn each_transition_matches_at_most_once() {
        let reference = [tr(5.0, TransitionKind::Birth)];
        let observed = [tr(4.9, TransitionKind::Birth), tr(5.1, TransitionKind::Birth)];
        let s = match_transitions(&reference, &observed, 1.0);
        assert_eq!(s.matched, 1);
        assert_eq!(s.precision(), 0.5);
        assert_eq!(s.recall(), 1.0);
    }

    #[test]
    fn empty_sides_score_by_convention() {
        let s = match_transitions(&[], &[], 1.0);
        assert_eq!((s.precision(), s.recall(), s.f1()), (1.0, 1.0, 1.0));
        let spurious = match_transitions(&[], &[tr(1.0, TransitionKind::Birth)], 1.0);
        assert_eq!(spurious.precision(), 0.0);
        assert_eq!(spurious.recall(), 1.0);
    }

    #[test]
    fn partition_diff_detects_birth_and_death() {
        let checkpoints = vec![
            (1.0, vec![Some(0), Some(0), None, None]),
            (2.0, vec![Some(0), Some(0), Some(1), Some(1)]), // cluster 1 born
            (3.0, vec![Some(0), Some(0), None, None]),       // cluster 1 died
        ];
        let ts = partition_transitions(&checkpoints);
        assert_eq!(ts, vec![tr(2.0, TransitionKind::Birth), tr(3.0, TransitionKind::Death)]);
    }

    #[test]
    fn partition_diff_detects_merge_and_split() {
        let checkpoints = vec![
            (1.0, vec![Some(0), Some(0), Some(1), Some(1)]),
            (2.0, vec![Some(7), Some(7), Some(7), Some(7)]), // merged
            (3.0, vec![Some(2), Some(2), Some(3), Some(3)]), // split
        ];
        let ts = partition_transitions(&checkpoints);
        assert_eq!(ts, vec![tr(2.0, TransitionKind::Merge), tr(3.0, TransitionKind::Split)]);
    }

    #[test]
    fn relabeling_without_structure_change_is_quiet() {
        // Baselines renumber their clusters constantly; overlap matching
        // must see through it.
        let checkpoints = vec![
            (1.0, vec![Some(0), Some(0), Some(1), Some(1)]),
            (2.0, vec![Some(9), Some(9), Some(4), Some(4)]),
        ];
        assert!(partition_transitions(&checkpoints).is_empty());
    }
}
