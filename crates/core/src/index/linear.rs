//! The brute-force neighbor "index": an exact scan over the whole slab.
//!
//! This is the seed implementation the engine used before grid indexing
//! existed, preserved behind the [`NeighborIndex`] trait for two reasons:
//! it is the only exact option for metric spaces without a coordinate
//! embedding, and it is the reference the property suite compares
//! [`super::UniformGrid`] against. It keeps no state of its own — the slab
//! *is* the index.

use edm_common::metric::Metric;

use crate::cell::{Cell, CellId};
use crate::slab::CellSlab;

use super::{closer, NeighborIndex};

/// Stateless full-scan fallback; exact for every metric.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinearScan;

impl<P> NeighborIndex<P> for LinearScan {
    fn on_insert<M: Metric<P>>(
        &mut self,
        _id: CellId,
        _seed: &P,
        _slab: &CellSlab<P>,
        _metric: &M,
    ) {
    }

    fn on_remove<M: Metric<P>>(
        &mut self,
        _id: CellId,
        _seed: &P,
        _slab: &CellSlab<P>,
        _metric: &M,
    ) {
    }

    fn nearest_within<M: Metric<P>>(
        &self,
        q: &P,
        radius: f64,
        slab: &CellSlab<P>,
        metric: &M,
        on_probe: &mut dyn FnMut(CellId, f64),
    ) -> Option<(CellId, f64)> {
        let mut best: Option<(CellId, f64)> = None;
        for (id, cell) in slab.iter() {
            let d = metric.dist(q, &cell.seed);
            on_probe(id, d);
            if closer(d, id, best) {
                best = Some((id, d));
            }
        }
        best.filter(|&(_, d)| d <= radius)
    }

    fn nearest_matching<M: Metric<P>>(
        &self,
        q: &P,
        slab: &CellSlab<P>,
        metric: &M,
        pred: &mut dyn FnMut(CellId, &Cell<P>) -> bool,
    ) -> Option<(CellId, f64)> {
        let mut best: Option<(CellId, f64)> = None;
        for (id, cell) in slab.iter() {
            if !pred(id, cell) {
                continue;
            }
            let d = metric.dist(q, &cell.seed);
            if closer(d, id, best) {
                best = Some((id, d));
            }
        }
        best
    }

    fn distance_lower_bound(&self, _q: &P, _seed: &P) -> f64 {
        // The scan probes everything, so the engine never needs a bound
        // from it; claim nothing.
        0.0
    }

    fn check_coherence<M: Metric<P>>(
        &self,
        _slab: &CellSlab<P>,
        _metric: &M,
    ) -> Result<(), String> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edm_common::metric::Euclidean;
    use edm_common::point::DenseVector;

    fn slab3() -> (CellSlab<DenseVector>, Vec<CellId>) {
        let mut slab = CellSlab::new();
        let ids = vec![
            slab.insert(Cell::new(DenseVector::from([0.0, 0.0]), 0.0)),
            slab.insert(Cell::new(DenseVector::from([2.0, 0.0]), 0.0)),
            slab.insert(Cell::new(DenseVector::from([5.0, 0.0]), 0.0)),
        ];
        (slab, ids)
    }

    #[test]
    fn nearest_within_respects_radius_and_probes_everything() {
        let (slab, ids) = slab3();
        let ix = LinearScan;
        let mut probes = 0;
        let q = DenseVector::from([1.9, 0.0]);
        let hit = ix.nearest_within(&q, 0.5, &slab, &Euclidean, &mut |_, _| probes += 1);
        assert_eq!(hit, Some((ids[1], slab.get(ids[1]).seed.dist(&q))));
        assert_eq!(probes, 3);
        probes = 0;
        let miss = ix.nearest_within(
            &DenseVector::from([10.0, 0.0]),
            0.5,
            &slab,
            &Euclidean,
            &mut |_, _| probes += 1,
        );
        assert_eq!(miss, None);
        assert_eq!(probes, 3);
    }

    #[test]
    fn nearest_matching_applies_the_predicate() {
        let (slab, ids) = slab3();
        let ix = LinearScan;
        let q = DenseVector::from([0.1, 0.0]);
        let banned = ids[0];
        let hit = ix.nearest_matching(&q, &slab, &Euclidean, &mut |id, _| id != banned);
        assert_eq!(hit.map(|(id, _)| id), Some(ids[1]));
        assert_eq!(ix.nearest_matching(&q, &slab, &Euclidean, &mut |_, _| false), None);
    }

    #[test]
    fn ties_break_toward_the_lower_id() {
        let mut slab = CellSlab::new();
        let a = slab.insert(Cell::new(DenseVector::from([-1.0, 0.0]), 0.0));
        let _b = slab.insert(Cell::new(DenseVector::from([1.0, 0.0]), 0.0));
        let ix = LinearScan;
        let q = DenseVector::from([0.0, 0.0]);
        let hit = ix.nearest_within(&q, 2.0, &slab, &Euclidean, &mut |_, _| {});
        assert_eq!(hit.map(|(id, _)| id), Some(a));
    }
}
