//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the minimal surface it actually consumes: [`RngCore`], [`SeedableRng`],
//! and the [`Rng`] extension with `gen::<T>()` / `gen_range(Range<usize>)`.
//! The concrete generator lives in the sibling `rand_chacha` stub.

#![warn(missing_docs)]

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from an RNG (the `Standard` distribution of
/// the real crate, flattened into one trait).
pub trait UniformSample: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl UniformSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl UniformSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl UniformSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl UniformSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UniformSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Unsigned-style integers drawable from a half-open range.
pub trait RangeSample: Sized + Copy {
    /// Draws uniformly from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! range_sample {
    ($($t:ty),*) => {$(
        impl RangeSample for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range needs a non-empty range");
                let span = (hi as i128 - lo as i128) as u64;
                // The modulo bias of a 64-bit source over these spans is
                // far below anything observable in this workspace.
                (lo as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}
range_sample!(usize, u64, u32, u16, u8, i64, i32);

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: UniformSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from `range` (half-open, must be non-empty).
    fn gen_range<T: RangeSample>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn f64_samples_live_in_unit_interval() {
        let mut r = Counter(42);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = Counter(7);
        for _ in 0..1000 {
            let i = r.gen_range(3..17);
            assert!((3..17).contains(&i));
        }
    }
}
