//! End-to-end test: EDMStream over the scripted SDS stream must recover
//! the paper's Fig 6/7 evolution narrative — approach, merge, emergence,
//! disappearance, split — from raw points alone.

use edmstream::data::gen::sds::{self, SdsConfig};
use edmstream::{DecayModel, EdmConfig, EdmStream, EndKind, Euclidean, EventKind};

fn sds_engine() -> EdmStream<edmstream::DenseVector, Euclidean> {
    let cfg = EdmConfig::builder(0.3)
        .decay(DecayModel::new(0.998, 200.0))
        .beta(3e-3)
        .rate(1_000.0)
        .recycle_horizon(5.0)
        .tau_every(128)
        .build()
        .expect("valid SDS configuration");
    EdmStream::new(cfg, Euclidean)
}

#[test]
fn sds_evolution_narrative_is_recovered() {
    let stream = sds::generate(&SdsConfig::default());
    let mut engine = sds_engine();
    let mut counts_per_second = Vec::new();
    let mut next = 1.0;
    for p in stream.iter() {
        engine.insert(&p.payload, p.ts);
        if p.ts >= next {
            counts_per_second.push(engine.n_clusters());
            next += 1.0;
        }
    }
    // Early phase: exactly two clusters while A and B are far apart.
    assert_eq!(counts_per_second[1], 2, "t=2s: {counts_per_second:?}");
    assert_eq!(counts_per_second[3], 2, "t=4s: {counts_per_second:?}");
    // Merged phase: one cluster somewhere in 9..=12 s.
    assert!((8..12).any(|i| counts_per_second[i] == 1), "no merged phase: {counts_per_second:?}");
    // The event log contains a merge before 12 s and an emergence after 11 s.
    assert_eq!(engine.events_evicted(), 0, "event log overflowed; raise event_capacity");
    let events = engine.take_events();
    assert!(
        events.iter().any(|e| matches!(e.kind, EventKind::Merge { .. }) && e.t < 12.0),
        "no merge event before 12s"
    );
    assert!(
        events.iter().any(|e| matches!(e.kind, EventKind::Emerge { .. }) && e.t > 11.0),
        "no emergence after 11s"
    );
    // The old (merged) cluster disappears in the second half of the stream.
    assert!(
        events.iter().any(|e| matches!(e.kind, EventKind::Disappear { .. }) && e.t > 12.0),
        "old cluster never disappeared"
    );
    // A split occurs after the C cluster starts separating (t > 13 s).
    assert!(
        events.iter().any(|e| matches!(e.kind, EventKind::Split { .. }) && e.t > 13.0),
        "no split after 13s"
    );
}

#[test]
fn sds_merge_corridor_has_exact_provenance_and_digest() {
    // Golden provenance run: publish one generation per simulated second,
    // then ask the evolution subsystem the Fig 7 question — "what changed
    // in the merge corridor?" — and check the answer names the right
    // clusters with the right lineage.
    let stream = sds::generate(&SdsConfig::default());
    let mut engine = sds_engine();
    let mut gen_sealed_at = Vec::new(); // (publication time, generation)
    let mut next = 1.0;
    for p in stream.iter() {
        engine.insert(&p.payload, p.ts);
        if p.ts >= next {
            let snap = engine.publish_snapshot(p.ts);
            gen_sealed_at.push((p.ts, snap.generation()));
            next += 1.0;
        }
    }
    assert_eq!(engine.evolution_events_lost(), 0, "default capacity must stay lossless");

    // Corridor window: everything after the 5 s publication, up to and
    // including the 12 s one. The scripted A↔B merge lands inside it.
    let gen_at = |t: f64| {
        gen_sealed_at
            .iter()
            .find(|&&(ts, _)| ts >= t)
            .map(|&(_, g)| g)
            .expect("publication past t exists")
    };
    let (g5, g12) = (gen_at(5.0), gen_at(12.0));
    let corridor = engine.digest_between(g5, g12).expect("corridor window is held");
    // The corridor sees the scripted A↔B merge plus transient
    // micro-clusters being absorbed as the blobs close in. Exactly one
    // merge involves an *original* cluster (born in the opening seconds)
    // — that one is the Fig 7 event.
    let scripted: Vec<_> = corridor
        .merges
        .iter()
        .filter(|m| {
            m.from.iter().any(|&victim| {
                engine.lineage_graph().node(victim).expect("victim tracked").born < 5.0
            })
        })
        .collect();
    assert_eq!(
        scripted.len(),
        1,
        "the corridor must contain exactly one merge of original clusters: {:?}",
        corridor.merges
    );
    let merge = scripted[0];
    assert!((5.0..=12.0).contains(&merge.t), "merge at t={} escaped the corridor", merge.t);
    // The absorbed ids die in the corridor; the survivor does not.
    for &victim in &merge.from {
        assert!(corridor.deaths.contains(&victim), "merge victim {victim} missing from deaths");
        assert!(!corridor.deaths.contains(&merge.into) || victim != merge.into);
    }

    // `digest_since` over the corridor start tells the same story.
    let since = engine.digest_since(g5).expect("window held");
    assert!(since.merges.iter().any(|m| m.t == merge.t), "digest_since dropped the merge");

    // Lineage: each victim's identity transitively resolves through the
    // survivor, and the survivor's ancestry bottoms out at an emergence.
    for &victim in &merge.from {
        let lineage = engine.lineage_of(victim).expect("lossless run answers lineage");
        assert_eq!(
            lineage.absorbed_into.first().copied(),
            Some(merge.into),
            "victim {victim} must hop to the survivor first"
        );
        let end = lineage.ancestry[0].end.expect("victim ended");
        assert_eq!(end.kind, EndKind::MergedInto { survivor: merge.into });
        assert!((end.t - merge.t).abs() < 1e-9, "lineage and digest disagree on merge time");
    }
    let survivor = engine.lineage_of(merge.into).expect("lossless run answers lineage");
    assert!(survivor.ancestry[0].born < merge.t, "survivor must predate the merge");

    // Rolling summaries kept both eras: the victims' summaries survive
    // their death (they are within the digest history), stamped with a
    // birth generation at or before the corridor.
    for &victim in &merge.from {
        let summary = engine.summary_of(victim).expect("victim summary retained");
        assert!(summary.first_generation <= g12);
        assert!(summary.mass > 0.0);
        if let (Some(centroid), Some(bounds)) = (&summary.centroid, &summary.bounds) {
            assert!(bounds.contains(centroid), "centroid must sit inside its bounding box");
        }
    }
}

#[test]
fn sds_invariants_hold_at_sampled_instants() {
    let stream = sds::generate(&SdsConfig { n: 8_000, ..Default::default() });
    let mut engine = sds_engine();
    for (i, p) in stream.iter().enumerate() {
        engine.insert(&p.payload, p.ts);
        if i % 1_000 == 999 {
            engine.check_invariants(p.ts).expect("DP-Tree invariant violated");
        }
    }
}

#[test]
fn dynamic_tau_separates_longer_than_static() {
    // The Table 4 property, as a regression test: count the seconds (of
    // the first 8) with two clusters under each policy.
    let run = |static_tau: Option<f64>| -> (usize, f64) {
        let stream = sds::generate(&SdsConfig::default());
        let mut builder = EdmConfig::builder(0.3)
            .decay(DecayModel::new(0.998, 200.0))
            .beta(3e-3)
            .rate(1_000.0)
            .recycle_horizon(5.0)
            .tau_every(128);
        if let Some(tau) = static_tau {
            builder = builder.tau_mode(edmstream::TauMode::Static(tau));
        }
        let cfg = builder.build().expect("valid SDS configuration");
        let mut engine = EdmStream::new(cfg, Euclidean);
        let mut two = 0;
        let mut next = 1.0;
        let mut tau0 = 0.0;
        for p in stream.iter().take_while(|p| p.ts <= 8.5) {
            engine.insert(&p.payload, p.ts);
            if p.ts >= next {
                if next == 1.0 {
                    tau0 = engine.tau();
                }
                if engine.n_clusters() == 2 {
                    two += 1;
                }
                next += 1.0;
            }
        }
        (two, tau0)
    };
    let (dynamic_two, tau0) = run(None);
    let (static_two, _) = run(Some(tau0));
    assert!(
        dynamic_two >= static_two,
        "dynamic kept 2 clusters {dynamic_two}s, static {static_two}s"
    );
    assert!(dynamic_two >= 6, "dynamic should separate for most of the approach");
}
