//! End-to-end test: EDMStream over the scripted SDS stream must recover
//! the paper's Fig 6/7 evolution narrative — approach, merge, emergence,
//! disappearance, split — from raw points alone.

use edmstream::data::gen::sds::{self, SdsConfig};
use edmstream::{DecayModel, EdmConfig, EdmStream, Euclidean, EventKind};

fn sds_engine() -> EdmStream<edmstream::DenseVector, Euclidean> {
    let cfg = EdmConfig::builder(0.3)
        .decay(DecayModel::new(0.998, 200.0))
        .beta(3e-3)
        .rate(1_000.0)
        .recycle_horizon(5.0)
        .tau_every(128)
        .build()
        .expect("valid SDS configuration");
    EdmStream::new(cfg, Euclidean)
}

#[test]
fn sds_evolution_narrative_is_recovered() {
    let stream = sds::generate(&SdsConfig::default());
    let mut engine = sds_engine();
    let mut counts_per_second = Vec::new();
    let mut next = 1.0;
    for p in stream.iter() {
        engine.insert(&p.payload, p.ts);
        if p.ts >= next {
            counts_per_second.push(engine.n_clusters());
            next += 1.0;
        }
    }
    // Early phase: exactly two clusters while A and B are far apart.
    assert_eq!(counts_per_second[1], 2, "t=2s: {counts_per_second:?}");
    assert_eq!(counts_per_second[3], 2, "t=4s: {counts_per_second:?}");
    // Merged phase: one cluster somewhere in 9..=12 s.
    assert!((8..12).any(|i| counts_per_second[i] == 1), "no merged phase: {counts_per_second:?}");
    // The event log contains a merge before 12 s and an emergence after 11 s.
    assert_eq!(engine.events_evicted(), 0, "event log overflowed; raise event_capacity");
    let events = engine.take_events();
    assert!(
        events.iter().any(|e| matches!(e.kind, EventKind::Merge { .. }) && e.t < 12.0),
        "no merge event before 12s"
    );
    assert!(
        events.iter().any(|e| matches!(e.kind, EventKind::Emerge { .. }) && e.t > 11.0),
        "no emergence after 11s"
    );
    // The old (merged) cluster disappears in the second half of the stream.
    assert!(
        events.iter().any(|e| matches!(e.kind, EventKind::Disappear { .. }) && e.t > 12.0),
        "old cluster never disappeared"
    );
    // A split occurs after the C cluster starts separating (t > 13 s).
    assert!(
        events.iter().any(|e| matches!(e.kind, EventKind::Split { .. }) && e.t > 13.0),
        "no split after 13s"
    );
}

#[test]
fn sds_invariants_hold_at_sampled_instants() {
    let stream = sds::generate(&SdsConfig { n: 8_000, ..Default::default() });
    let mut engine = sds_engine();
    for (i, p) in stream.iter().enumerate() {
        engine.insert(&p.payload, p.ts);
        if i % 1_000 == 999 {
            engine.check_invariants(p.ts).expect("DP-Tree invariant violated");
        }
    }
}

#[test]
fn dynamic_tau_separates_longer_than_static() {
    // The Table 4 property, as a regression test: count the seconds (of
    // the first 8) with two clusters under each policy.
    let run = |static_tau: Option<f64>| -> (usize, f64) {
        let stream = sds::generate(&SdsConfig::default());
        let mut builder = EdmConfig::builder(0.3)
            .decay(DecayModel::new(0.998, 200.0))
            .beta(3e-3)
            .rate(1_000.0)
            .recycle_horizon(5.0)
            .tau_every(128);
        if let Some(tau) = static_tau {
            builder = builder.tau_mode(edmstream::TauMode::Static(tau));
        }
        let cfg = builder.build().expect("valid SDS configuration");
        let mut engine = EdmStream::new(cfg, Euclidean);
        let mut two = 0;
        let mut next = 1.0;
        let mut tau0 = 0.0;
        for p in stream.iter().take_while(|p| p.ts <= 8.5) {
            engine.insert(&p.payload, p.ts);
            if p.ts >= next {
                if next == 1.0 {
                    tau0 = engine.tau();
                }
                if engine.n_clusters() == 2 {
                    two += 1;
                }
                next += 1.0;
            }
        }
        (two, tau0)
    };
    let (dynamic_two, tau0) = run(None);
    let (static_two, _) = run(Some(tau0));
    assert!(
        dynamic_two >= static_two,
        "dynamic kept 2 clusters {dynamic_two}s, static {static_two}s"
    );
    assert!(dynamic_two >= 6, "dynamic should separate for most of the approach");
}
