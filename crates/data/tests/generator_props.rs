//! Property tests for the dataset generators: determinism, timestamp
//! monotonicity, and label consistency at arbitrary sizes and seeds.

use edm_data::gen::{covertype, hds, kdd, nads, pamap2, sds};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn sds_deterministic_and_ordered(n in 200usize..3000, seed in any::<u64>()) {
        let cfg = sds::SdsConfig { n, seed, ..Default::default() };
        let a = sds::generate(&cfg);
        let b = sds::generate(&cfg);
        prop_assert_eq!(a.len(), n);
        prop_assert!(a.points.windows(2).all(|w| w[0].ts <= w[1].ts));
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert_eq!(&x.payload, &y.payload);
            prop_assert_eq!(x.label, y.label);
        }
    }

    #[test]
    fn kdd_labels_within_class_range(n in 500usize..4000, seed in any::<u64>()) {
        let s = kdd::generate(&kdd::KddConfig { n, seed, ..Default::default() });
        prop_assert!(s.iter().all(|p| p.label.unwrap() < 23));
        prop_assert!(s.iter().all(|p| p.payload.dim() == 34));
    }

    #[test]
    fn covertype_dimensions_and_labels(n in 500usize..4000, seed in any::<u64>()) {
        let s = covertype::generate(&covertype::CoverTypeConfig {
            n, seed, ..Default::default()
        });
        prop_assert!(s.iter().all(|p| p.label.unwrap() < 7));
        prop_assert!(s.iter().all(|p| p.payload.dim() == 54));
    }

    #[test]
    fn pamap2_glitches_unlabeled(n in 500usize..4000, seed in any::<u64>()) {
        let s = pamap2::generate(&pamap2::Pamap2Config { n, seed, ..Default::default() });
        for p in s.iter() {
            if let Some(l) = p.label {
                prop_assert!(l < 13); // None = glitch
            }
            prop_assert_eq!(p.payload.dim(), 51);
        }
    }

    #[test]
    fn hds_respects_dimension(dim in 2usize..64, seed in any::<u64>()) {
        let mut cfg = hds::HdsConfig::paper(dim);
        cfg.n = 500;
        cfg.seed = seed;
        let s = hds::generate(&cfg);
        prop_assert!(s.iter().all(|p| p.payload.dim() == dim));
        prop_assert!(s.iter().all(|p| p.label.unwrap() < 20));
    }

    #[test]
    fn nads_headlines_are_nonempty_sorted_token_sets(n in 500usize..4000, seed in any::<u64>()) {
        let s = nads::generate(&nads::NadsConfig { n, seed, ..Default::default() });
        for p in s.iter() {
            prop_assert!(!p.payload.is_empty());
            prop_assert!(p.payload.tokens().windows(2).all(|w| w[0] < w[1]));
            prop_assert!(p.payload.len() <= 6);
        }
    }
}
