//! Network-intrusion monitoring on the KDDCUP99 surrogate: maintain live
//! traffic clusters at 1k connections/sec and flag bursts that open new
//! dense regions (possible attacks) the moment their cluster emerges.
//!
//! ```text
//! cargo run --release --example intrusion_monitor
//! ```

use edmstream::data::gen::kdd::{self, KddConfig};
use edmstream::{EdmConfig, EdmStream, Euclidean, EventKind};

fn main() {
    let stream = kdd::generate(&KddConfig { n: 40_000, ..Default::default() });
    println!(
        "monitoring {} connection records ({} traffic classes, 34 features)\n",
        stream.len(),
        stream.n_classes
    );

    let mut cfg = EdmConfig::new(100.0); // Table 2's r for KDDCUP99
    cfg.rate = 1_000.0;
    let mut engine = EdmStream::new(cfg, Euclidean);

    let mut seen = 0usize;
    let mut alerts = 0usize;
    for p in stream.iter() {
        engine.insert(&p.payload, p.ts);
        while seen < engine.events().len() {
            let ev = &engine.events()[seen];
            seen += 1;
            match &ev.kind {
                EventKind::Emerge { cluster } => {
                    alerts += 1;
                    println!(
                        "t={:6.1}s  ALERT: new dense traffic pattern (cluster {cluster}) — {} live clusters",
                        ev.t,
                        engine.n_clusters()
                    );
                }
                EventKind::Disappear { cluster } => {
                    println!("t={:6.1}s  pattern {cluster} subsided", ev.t);
                }
                _ => {}
            }
        }
    }

    println!("\nsummary:");
    println!("  emerge alerts raised: {alerts}");
    println!("  final live clusters:  {}", engine.n_clusters());
    println!(
        "  cells: {} active / {} reservoir (peak reservoir {})",
        engine.active_len(),
        engine.reservoir_len(),
        engine.reservoir_peak()
    );
    let s = engine.stats();
    println!(
        "  per-point work: {} absorbed, {} new cells, {:.1} ms total dependency maintenance",
        s.absorbed,
        s.new_cells,
        s.dep_update_millis()
    );
    println!(
        "  filters pruned {:.1}% of {} dependency candidates",
        100.0 * s.filter_rate(),
        s.dep_candidates
    );
}
