//! Criterion bench: raw DP-Tree operations — attach/detach churn and
//! strong-root walks — on a synthetic chain-heavy tree.

use criterion::{criterion_group, criterion_main, Criterion};
use edm_core::cell::Cell;
use edm_core::slab::CellSlab;
use edm_core::tree;

/// Builds a slab of `n` active cells wired as a long strong chain with
/// periodic weak links (every 16th link weak).
fn chain(n: usize) -> (CellSlab<u32>, Vec<edm_core::CellId>) {
    let decay = edm_common::decay::DecayModel::paper_default();
    let mut slab = CellSlab::new();
    let mut ids = Vec::with_capacity(n);
    for i in 0..n {
        let mut cell = Cell::new(i as u32, 0.0);
        for _ in 0..(n - i) {
            cell.absorb(0.0, &decay);
        }
        cell.active = true;
        ids.push(slab.insert(cell));
    }
    for i in 1..n {
        let delta = if i % 16 == 0 { 10.0 } else { 0.5 };
        tree::attach(&mut slab, ids[i], ids[i - 1], delta);
    }
    (slab, ids)
}

fn bench_tree(c: &mut Criterion) {
    let mut group = c.benchmark_group("dptree");
    group.sample_size(20);
    group.bench_function("strong_root_walk_512", |b| {
        let (slab, ids) = chain(512);
        b.iter(|| {
            let mut acc = 0u32;
            for &id in &ids {
                acc ^= tree::strong_root(&slab, id, 1.0).0;
            }
            acc
        })
    });
    group.bench_function("set_dep_churn_512", |b| {
        let (mut slab, ids) = chain(512);
        b.iter(|| {
            // Re-point the tail cell across parents repeatedly.
            let tail = ids[511];
            for &parent in ids.iter().skip(1).take(63) {
                tree::set_dep(&mut slab, tail, parent, 0.5);
            }
            slab.get(tail).dep
        })
    });
    group.bench_function("strong_roots_enumeration_512", |b| {
        let (slab, _) = chain(512);
        b.iter(|| tree::strong_roots(&slab, 1.0).len())
    });
    group.finish();
}

criterion_group!(benches, bench_tree);
criterion_main!(benches);
