//! A hand-rolled, double-buffered `Arc` swap cell — the lock-free
//! publication primitive under [`crate::SnapshotPublisher`].
//!
//! The vendor tree is offline, so the usual `arc-swap` crate is not
//! available; this module implements the narrow slice of it the serving
//! tier needs, on plain `std::sync` atomics:
//!
//! * **one writer** replaces the current `Arc<T>` ([`SwapCell::store`]);
//! * **unbounded readers** clone the current `Arc<T>` ([`SwapCell::load`])
//!   without ever taking a lock — the read path is a pin counter
//!   increment, a recheck, an `Arc` clone, and a decrement.
//!
//! # Design
//!
//! Two slots, each `{ pinned: AtomicUsize, value: UnsafeCell<Arc<T>> }`,
//! plus a `current` index. Readers pin the slot `current` points at,
//! *re-read* `current`, and only dereference if it still points at the
//! pinned slot; otherwise they unpin and retry. The writer always mutates
//! the **non-current** slot, and only after observing its pin count at
//! zero; it then flips `current`. A reader therefore only ever
//! dereferences a slot the writer cannot be mutating, and the writer only
//! ever mutates a slot no reader holds pinned.
//!
//! # Safety argument
//!
//! All atomics use `SeqCst`, so every pin, flip and pin-check below is
//! part of one total order. Suppose a reader dereferences slot `i`. Its
//! recheck saw `current == i` *after* its pin landed. For the writer to
//! mutate slot `i` it must first flip `current` away from `i` and then
//! observe `pinned[i] == 0`. Either that observation precedes the
//! reader's pin — then the flip also precedes it, the recheck fails, and
//! the reader never dereferences — or it follows the reader's *unpin*,
//! which the reader only issues after its `Arc` clone is complete. In
//! both cases the mutation and the dereference are temporally disjoint.
//! Conversely the value the reader clones was written before the flip
//! that made the slot current, and the flip/recheck pair orders that
//! write before the read. Hence no data race, and no torn `Arc`.
//!
//! Progress: readers are lock-free — a retry only happens when the
//! writer completed a flip in the window, and two consecutive flips
//! around one pin are themselves serialized by the pin the reader holds.
//! The writer may briefly spin waiting for a reader mid-clone to unpin;
//! that window is a few instructions, not a critical section a descheduled
//! reader can hold indefinitely *while pinned and rechecked* (a reader
//! descheduled before its recheck will fail the recheck and unpin).

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::SeqCst};
use std::sync::Arc;

/// One buffer of the double-buffered cell.
struct Slot<T> {
    /// Readers currently between pin and unpin on this slot.
    pinned: AtomicUsize,
    /// The published value. Only the writer writes it, and only while the
    /// slot is non-current with `pinned == 0`.
    value: UnsafeCell<Arc<T>>,
}

/// A lock-free single-writer / many-reader `Arc<T>` cell.
///
/// [`SwapCell::load`] never blocks on [`SwapCell::store`]; see the module
/// docs for the full protocol and its safety argument. The single-writer
/// contract is enforced by the crate: only the serving writer thread
/// calls [`SwapCell::store`], and a debug assertion catches accidental
/// concurrent stores.
pub struct SwapCell<T> {
    slots: [Slot<T>; 2],
    /// Index of the slot readers should pin — always 0 or 1.
    current: AtomicUsize,
    /// Number of `store`s performed since construction (diagnostics; the
    /// authoritative generation lives inside the published payload).
    stores: AtomicU64,
    /// Guards the single-writer contract in debug builds.
    storing: AtomicUsize,
}

// SAFETY: the protocol above keeps the writer's UnsafeCell mutation and
// every reader's dereference temporally disjoint, and `Arc<T>` itself is
// Send + Sync for T: Send + Sync. The UnsafeCell is the only reason the
// auto-impls do not apply.
unsafe impl<T: Send + Sync> Send for SwapCell<T> {}
unsafe impl<T: Send + Sync> Sync for SwapCell<T> {}

impl<T> SwapCell<T> {
    /// A cell initially publishing `value` (both buffers hold it, so the
    /// first `store` can overwrite the inactive one unconditionally).
    pub fn new(value: Arc<T>) -> Self {
        SwapCell {
            slots: [
                Slot { pinned: AtomicUsize::new(0), value: UnsafeCell::new(value.clone()) },
                Slot { pinned: AtomicUsize::new(0), value: UnsafeCell::new(value) },
            ],
            current: AtomicUsize::new(0),
            stores: AtomicU64::new(0),
            storing: AtomicUsize::new(0),
        }
    }

    /// Clones the currently published `Arc<T>`. Lock-free: retries only
    /// when the writer flipped buffers mid-pin, and never waits on the
    /// writer's store.
    pub fn load(&self) -> Arc<T> {
        loop {
            let i = self.current.load(SeqCst);
            let slot = &self.slots[i];
            slot.pinned.fetch_add(1, SeqCst);
            if self.current.load(SeqCst) == i {
                // SAFETY: pin + recheck — the writer cannot be mutating
                // this slot (module-level safety argument).
                let value = unsafe { (*slot.value.get()).clone() };
                slot.pinned.fetch_sub(1, SeqCst);
                return value;
            }
            // Writer flipped between our first read and the pin landing;
            // this slot may be about to be overwritten. Back off.
            slot.pinned.fetch_sub(1, SeqCst);
            std::hint::spin_loop();
        }
    }

    /// Publishes `value`, replacing the current one for all subsequent
    /// [`SwapCell::load`]s. **Single writer only** — concurrent stores
    /// are a contract violation (panics in debug builds).
    pub fn store(&self, value: Arc<T>) {
        debug_assert_eq!(
            self.storing.fetch_add(1, SeqCst),
            0,
            "SwapCell::store called concurrently — the cell is single-writer"
        );
        let cur = self.current.load(SeqCst);
        let next = cur ^ 1;
        // Wait out readers still cloning from the buffer we are about to
        // overwrite: they pinned it while it was current (at least two
        // flips ago) and are at most a few instructions from unpinning.
        while self.slots[next].pinned.load(SeqCst) != 0 {
            std::thread::yield_now();
        }
        // SAFETY: `next` is not `current`, so no new reader passes its
        // recheck on it, and the pin drain above retired every old one.
        unsafe {
            *self.slots[next].value.get() = value;
        }
        self.current.store(next, SeqCst);
        self.stores.fetch_add(1, SeqCst);
        self.storing.fetch_sub(1, SeqCst);
    }

    /// Number of [`SwapCell::store`]s since construction.
    pub fn stores(&self) -> u64 {
        self.stores.load(SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::thread;

    #[test]
    fn load_returns_initial_then_stored() {
        let cell = SwapCell::new(Arc::new(1u64));
        assert_eq!(*cell.load(), 1);
        assert_eq!(cell.stores(), 0);
        cell.store(Arc::new(2));
        assert_eq!(*cell.load(), 2);
        cell.store(Arc::new(3));
        assert_eq!(*cell.load(), 3);
        assert_eq!(cell.stores(), 2);
    }

    #[test]
    fn readers_hold_old_arcs_safely_across_many_stores() {
        let cell = SwapCell::new(Arc::new(vec![0u64; 32]));
        let old = cell.load();
        for g in 1..100u64 {
            cell.store(Arc::new(vec![g; 32]));
        }
        // The pre-store clone is untouched by 99 buffer overwrites.
        assert!(old.iter().all(|&v| v == 0));
        assert!(cell.load().iter().all(|&v| v == 99));
    }

    /// Hammer the cell from many readers while the writer republishes.
    /// Every loaded vector must be internally consistent (all elements
    /// equal) — a torn read would mix generations.
    #[test]
    fn concurrent_loads_never_tear() {
        let cell = Arc::new(SwapCell::new(Arc::new(vec![0u64; 64])));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                thread::spawn(move || {
                    let mut last = 0u64;
                    while !stop.load(SeqCst) {
                        let v = cell.load();
                        let first = v[0];
                        assert!(v.iter().all(|&x| x == first), "torn read");
                        assert!(first >= last, "non-monotone publication");
                        last = first;
                    }
                })
            })
            .collect();
        for g in 1..=2_000u64 {
            cell.store(Arc::new(vec![g; 64]));
        }
        stop.store(true, SeqCst);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(cell.load()[0], 2_000);
    }
}
