//! Typed errors of the engine's fallible entry points.

use edm_common::time::Timestamp;

use crate::config::ConfigError;

/// An error from a fallible engine operation.
///
/// The hot path ([`crate::EdmStream::insert`]) stays infallible; callers
/// that ingest from untrusted transports use
/// [`crate::EdmStream::try_insert`] and match on this.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EdmError {
    /// A configuration was rejected (carries the builder's verdict).
    Config(ConfigError),
    /// A point arrived with a timestamp behind the stream clock. Every
    /// structure in the engine assumes in-order arrival (paper §3.1).
    TimeRegression {
        /// The engine's current stream time.
        now: Timestamp,
        /// The offending earlier timestamp.
        t: Timestamp,
    },
}

impl std::fmt::Display for EdmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdmError::Config(e) => write!(f, "invalid configuration: {e}"),
            EdmError::TimeRegression { now, t } => {
                write!(f, "stream time went backwards: now {now}, got {t}")
            }
        }
    }
}

impl std::error::Error for EdmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EdmError::Config(e) => Some(e),
            EdmError::TimeRegression { .. } => None,
        }
    }
}

impl From<ConfigError> for EdmError {
    fn from(e: ConfigError) -> Self {
        EdmError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_carry_context() {
        let e = EdmError::TimeRegression { now: 5.0, t: 3.0 };
        let msg = e.to_string();
        assert!(msg.contains('5') && msg.contains('3'), "{msg}");
        let c: EdmError = ConfigError::ZeroInitPoints.into();
        assert!(c.to_string().contains("init_points"));
    }

    #[test]
    fn config_errors_chain_as_source() {
        use std::error::Error;
        let e: EdmError = ConfigError::ZeroTauEvery.into();
        assert!(e.source().is_some());
        assert!(EdmError::TimeRegression { now: 1.0, t: 0.0 }.source().is_none());
    }
}
