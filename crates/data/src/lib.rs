//! # edm-data
//!
//! Stream model and dataset generators for the EDMStream reproduction.
//!
//! * [`stream`] — timestamped, optionally-labeled stream points and
//!   materialized labeled streams (paper §3.1's `S^N = {p_i^{t_i}}`).
//! * [`clusterer`] — the [`clusterer::StreamClusterer`] trait implemented by
//!   EDMStream and by every baseline, so the harness can drive them
//!   uniformly.
//! * [`gen`] — deterministic synthetic generators for the six datasets of
//!   the paper's Table 2 (SDS, HDS and surrogates for KDDCUP99, CoverType,
//!   PAMAP2, NADS; see DESIGN.md §5 for the substitution rationale).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod clusterer;
pub mod gen;
pub mod stream;

pub use clusterer::StreamClusterer;
pub use stream::{LabeledStream, StreamPoint};
