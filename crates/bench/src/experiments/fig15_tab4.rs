//! Table 4 + Fig 15 — adaptive τ vs static τ on SDS.
//!
//! Table 4 compares the number of clusters per second for the first ten
//! seconds under the dynamic τ policy (§5) and a static τ fixed at the
//! initial pick τ₀. The paper's point: as the two SDS clusters approach,
//! the static τ merges them prematurely while the dynamic τ shrinks with
//! the contracting δ distribution and keeps separating the true peaks.
//!
//! Fig 15 shows the decision graphs at init/4 s/5 s/6 s with both τ lines.

use edm_common::metric::Euclidean;
use edm_core::{EdmStream, TauMode};
use edm_data::gen::sds::{self, SdsConfig};
use edm_dp::decision::DecisionGraph;

use super::Ctx;
use crate::catalog::{self, DatasetId};
use crate::report::Report;

/// Runs one SDS pass, sampling cluster counts per second and decision
/// graphs at the Fig 15 instants. Returns (per-second counts, τ at init,
/// graphs at {init, 4, 5, 6} with the engine's τ at that time).
fn run_sds(tau_mode_static: Option<f64>) -> (Vec<usize>, f64, Vec<(String, DecisionGraph, f64)>) {
    let stream = sds::generate(&SdsConfig::default());
    let mut builder = catalog::edm_config(DatasetId::Sds, stream.default_r, 1_000.0).to_builder();
    if let Some(tau) = tau_mode_static {
        builder = builder.tau_mode(TauMode::Static(tau));
    }
    let cfg = builder.build().expect("SDS config is valid");
    let mut engine = EdmStream::new(cfg, Euclidean);
    let mut counts = Vec::new();
    let mut graphs = Vec::new();
    let mut next = 1.0;
    let mut tau0 = 0.0;
    for p in stream.iter() {
        engine.insert(&p.payload, p.ts);
        if p.ts >= next && next <= 10.0 {
            if next == 1.0 {
                let snap = engine.snapshot(p.ts);
                tau0 = snap.tau();
                let (rho, delta) = snap.decision_graph();
                graphs.push(("init (1s)".to_string(), DecisionGraph::new(rho, delta), tau0));
            }
            if [4.0, 5.0, 6.0].contains(&next) {
                let snap = engine.snapshot(p.ts);
                let (rho, delta) = snap.decision_graph();
                graphs.push((
                    format!("t = {next:.0}s"),
                    DecisionGraph::new(rho, delta),
                    snap.tau(),
                ));
            }
            counts.push(engine.n_clusters());
            next += 1.0;
        }
    }
    (counts, tau0, graphs)
}

/// Regenerates Table 4.
pub fn run_tab4(ctx: &Ctx) -> std::io::Result<()> {
    // Pass 1: adaptive run also discovers τ₀ (the simulated user pick).
    let (dynamic_counts, tau0, _) = run_sds(None);
    // Pass 2: static τ fixed at τ₀.
    let (static_counts, _, _) = run_sds(Some(tau0));
    let mut rep = Report::new(
        "tab4_dynamic_vs_static_tau",
        &["t_s", "dynamic_tau_clusters", "static_tau_clusters"],
        ctx.out_dir(),
    );
    for (i, (d, s)) in dynamic_counts.iter().zip(&static_counts).enumerate() {
        rep.row(vec![(i + 1).to_string(), d.to_string(), s.to_string()]);
    }
    rep.finish()?;
    println!("(tau0 from the init decision graph: {tau0:.3})");
    Ok(())
}

/// Regenerates Fig 15.
pub fn run_fig15(_ctx: &Ctx) -> std::io::Result<()> {
    let (_, tau0, graphs) = run_sds(None);
    for (label, graph, dynamic_tau) in &graphs {
        println!(
            "\n== fig15: decision graph at {label} (static tau {tau0:.2} '-', dynamic tau {dynamic_tau:.2}) ==",
        );
        print!("{}", graph.render_ascii(14, 56, &[tau0, *dynamic_tau]));
        println!(
            "cells: {}   centers above static: {}   above dynamic: {}",
            graph.len(),
            graph.centers_at(tau0, 0.0),
            graph.centers_at(*dynamic_tau, 0.0),
        );
    }
    Ok(())
}
