//! The wire codec: length-prefixed frames and the JSON encoding of
//! [`Query`] / [`QueryResponse`] / [`QueryError`].
//!
//! # Frame format
//!
//! ```text
//! +----------------------+----------------------------+
//! | length: u32, big-end | payload: `length` bytes of |
//! | (payload bytes only) | UTF-8 JSON                 |
//! +----------------------+----------------------------+
//! ```
//!
//! One request frame carries one query object; the server answers with
//! exactly one response frame. Length prefixes above the configured cap
//! ([`crate::net::NetConfig`] `max_frame_bytes`) are refused *before*
//! any allocation — a hostile 4 GiB prefix costs the server nothing.
//!
//! # Request payloads
//!
//! `{"q": <name>, …args}` — the name is [`Query::name`]:
//!
//! ```json
//! {"q":"cluster_of","point":[0.5,1.0]}
//! {"q":"digest_between","from":3,"to":7}
//! {"q":"stats"}
//! ```
//!
//! # Response payloads
//!
//! `{"ok":{"resp":<name>, …fields}}` on success, `{"err":{…}}` on a
//! typed refusal. Query-layer refusals carry `"code":"evolve"` plus the
//! structured [`EvolveError`]; transport-layer refusals (malformed
//! frame, connection cap, shutdown) use the other
//! [`ProtocolError`] codes. Encoding is deterministic (insertion-order
//! fields, shortest-round-trip floats), so equal values encode to equal
//! bytes — the loopback equivalence test compares raw frames.

use std::io::{Read, Write};
use std::time::Duration;

use edm_core::{EvolutionDigest, EvolveError, MassDrift, MergeEdge, SplitEdge};

use super::json::Json;
use crate::query::{Assignment, HealthStatus, Query, QueryError, QueryResponse};
use crate::stats::ServeStats;

/// Payloads that can cross the wire as a flat `f64` coordinate list.
///
/// The engine is generic over payload types; the network protocol is
/// not — it speaks JSON arrays of numbers. Implementing this trait is
/// what opts a payload type into [`crate::net::NetServer`].
pub trait WirePoint: Sized {
    /// The coordinates to send.
    fn to_wire(&self) -> Vec<f64>;
    /// Rebuilds the payload from received coordinates; `None` refuses
    /// (empty vector, wrong arity for the type, …).
    fn from_wire(coords: Vec<f64>) -> Option<Self>;
}

impl WirePoint for edm_common::point::DenseVector {
    fn to_wire(&self) -> Vec<f64> {
        self.coords().to_vec()
    }

    fn from_wire(coords: Vec<f64>) -> Option<Self> {
        if coords.is_empty() || coords.iter().any(|c| !c.is_finite()) {
            return None;
        }
        Some(edm_common::point::DenseVector::new(coords))
    }
}

/// A typed protocol-level refusal — what the server sends when it could
/// not even reach [`crate::ServeHandle::execute`], and what
/// [`crate::net::NetClient`] surfaces alongside query errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The frame's length prefix exceeded the server's cap.
    OversizedFrame {
        /// Declared payload length.
        declared: u64,
        /// The server's cap.
        max: u64,
    },
    /// The payload was not valid UTF-8 JSON.
    BadJson {
        /// Parser diagnostic.
        detail: String,
    },
    /// The JSON was well-formed but not a known query (bad `"q"` tag,
    /// missing or ill-typed argument).
    BadQuery {
        /// What was wrong.
        detail: String,
    },
    /// The server is at its connection cap; retry later.
    Busy {
        /// The configured cap the connection ran into.
        max_connections: u64,
    },
    /// The server is shutting down and no longer answers.
    ShuttingDown,
}

impl ProtocolError {
    /// Stable wire code of the variant.
    pub fn code(&self) -> &'static str {
        match self {
            ProtocolError::OversizedFrame { .. } => "oversized_frame",
            ProtocolError::BadJson { .. } => "bad_json",
            ProtocolError::BadQuery { .. } => "bad_query",
            ProtocolError::Busy { .. } => "busy",
            ProtocolError::ShuttingDown => "shutting_down",
        }
    }
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::OversizedFrame { declared, max } => {
                write!(f, "frame of {declared} bytes exceeds the {max}-byte cap")
            }
            ProtocolError::BadJson { detail } => write!(f, "payload is not valid JSON: {detail}"),
            ProtocolError::BadQuery { detail } => write!(f, "not a known query: {detail}"),
            ProtocolError::Busy { max_connections } => {
                write!(f, "server at its {max_connections}-connection cap")
            }
            ProtocolError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Everything a response frame can carry: the query's own result, or a
/// protocol-level refusal.
pub type WireResult = Result<Result<QueryResponse, QueryError>, ProtocolError>;

// ---------------------------------------------------------------------
// frame I/O
// ---------------------------------------------------------------------

/// What went wrong reading a frame off a stream.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the stream cleanly before a length prefix.
    Closed,
    /// The declared length exceeds `max` — refuse before allocating.
    Oversized {
        /// Declared payload length.
        declared: u64,
    },
    /// The stream errored or closed mid-frame (includes read timeouts).
    Io(std::io::Error),
}

/// Reads one length-prefixed frame, enforcing the size cap before any
/// payload allocation.
pub fn read_frame(r: &mut impl Read, max_bytes: usize) -> Result<Vec<u8>, FrameError> {
    let mut len_buf = [0u8; 4];
    // A clean EOF before any prefix byte = peer is done; mid-prefix or
    // mid-payload EOF is an I/O error (truncated frame).
    match r.read(&mut len_buf) {
        Ok(0) => return Err(FrameError::Closed),
        Ok(n) => {
            if n < 4 {
                r.read_exact(&mut len_buf[n..]).map_err(FrameError::Io)?;
            }
        }
        Err(e) => return Err(FrameError::Io(e)),
    }
    let declared = u32::from_be_bytes(len_buf) as u64;
    if declared > max_bytes as u64 {
        return Err(FrameError::Oversized { declared });
    }
    let mut payload = vec![0u8; declared as usize];
    r.read_exact(&mut payload).map_err(FrameError::Io)?;
    Ok(payload)
}

/// Writes one length-prefixed frame.
///
/// Prefix and payload go out in a single `write_all` — two writes would
/// put them in separate TCP segments, and Nagle's algorithm holding the
/// second until the first is ACKed (itself delayed ~40 ms by the peer)
/// turns every frame into a stall. `NetServer`/`NetClient` additionally
/// set `TCP_NODELAY`, but coalescing keeps the codec fast even on raw
/// streams that don't.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame too large"))?;
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&len.to_be_bytes());
    frame.extend_from_slice(payload);
    w.write_all(&frame)?;
    w.flush()
}

// ---------------------------------------------------------------------
// query encoding
// ---------------------------------------------------------------------

/// Encodes one query as a request payload.
pub fn encode_query<P: WirePoint>(q: &Query<P>) -> Vec<u8> {
    let mut fields = vec![("q".to_string(), Json::str(q.name()))];
    match q {
        Query::ClusterOf { point } => {
            fields.push(("point".into(), Json::f64_arr(&point.to_wire())));
        }
        Query::DigestSince { from } => fields.push(("from".into(), Json::u64(*from))),
        Query::DigestBetween { from, to } => {
            fields.push(("from".into(), Json::u64(*from)));
            fields.push(("to".into(), Json::u64(*to)));
        }
        _ => {}
    }
    Json::Obj(fields).encode().into_bytes()
}

/// Decodes a request payload into a query, or says precisely why not.
pub fn decode_query<P: WirePoint>(payload: &[u8]) -> Result<Query<P>, ProtocolError> {
    let v = Json::parse(payload).map_err(|e| ProtocolError::BadJson { detail: e.to_string() })?;
    let bad = |detail: &str| ProtocolError::BadQuery { detail: detail.to_string() };
    let tag = v.get("q").and_then(Json::as_str).ok_or_else(|| bad("missing \"q\" tag"))?;
    let u64_field = |name: &str| {
        v.get(name).and_then(Json::as_u64).ok_or_else(|| bad(&format!("missing u64 \"{name}\"")))
    };
    match tag {
        "cluster_of" => {
            let coords = v
                .get("point")
                .and_then(Json::as_f64_arr)
                .ok_or_else(|| bad("missing numeric \"point\" array"))?;
            let point =
                P::from_wire(coords).ok_or_else(|| bad("\"point\" rejected by payload type"))?;
            Ok(Query::ClusterOf { point })
        }
        "n_clusters" => Ok(Query::NClusters),
        "decision_graph" => Ok(Query::DecisionGraph),
        "digest_since" => Ok(Query::DigestSince { from: u64_field("from")? }),
        "digest_between" => {
            Ok(Query::DigestBetween { from: u64_field("from")?, to: u64_field("to")? })
        }
        "generation" => Ok(Query::Generation),
        "snapshot_age" => Ok(Query::SnapshotAge),
        "stats" => Ok(Query::Stats),
        "health" => Ok(Query::Health),
        other => Err(bad(&format!("unknown query {other:?}"))),
    }
}

// ---------------------------------------------------------------------
// response encoding
// ---------------------------------------------------------------------

fn digest_json(d: &EvolutionDigest) -> Json {
    let merge = |m: &MergeEdge| {
        Json::Obj(vec![
            ("t".into(), Json::f64(m.t)),
            ("from".into(), Json::u64_arr(&m.from)),
            ("into".into(), Json::u64(m.into)),
        ])
    };
    let split = |s: &SplitEdge| {
        Json::Obj(vec![
            ("t".into(), Json::f64(s.t)),
            ("from".into(), Json::u64(s.from)),
            ("into".into(), Json::u64_arr(&s.into)),
        ])
    };
    let drift = |dr: &MassDrift| {
        Json::Obj(vec![
            ("cluster".into(), Json::u64(dr.cluster)),
            ("from_mass".into(), Json::f64(dr.from_mass)),
            ("to_mass".into(), Json::f64(dr.to_mass)),
        ])
    };
    Json::Obj(vec![
        ("from_generation".into(), Json::u64(d.from_generation)),
        ("to_generation".into(), Json::u64(d.to_generation)),
        ("from_t".into(), Json::f64(d.from_t)),
        ("to_t".into(), Json::f64(d.to_t)),
        ("births".into(), Json::u64_arr(&d.births)),
        ("deaths".into(), Json::u64_arr(&d.deaths)),
        ("merges".into(), Json::Arr(d.merges.iter().map(merge).collect())),
        ("splits".into(), Json::Arr(d.splits.iter().map(split).collect())),
        ("adjustments".into(), Json::u64(d.adjustments)),
        ("drifts".into(), Json::Arr(d.drifts.iter().map(drift).collect())),
    ])
}

fn digest_from_json(v: &Json) -> Option<EvolutionDigest> {
    let merges = v
        .get("merges")?
        .as_arr()?
        .iter()
        .map(|m| {
            Some(MergeEdge {
                t: m.get("t")?.as_f64()?,
                from: m.get("from")?.as_u64_arr()?,
                into: m.get("into")?.as_u64()?,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    let splits = v
        .get("splits")?
        .as_arr()?
        .iter()
        .map(|s| {
            Some(SplitEdge {
                t: s.get("t")?.as_f64()?,
                from: s.get("from")?.as_u64()?,
                into: s.get("into")?.as_u64_arr()?,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    let drifts = v
        .get("drifts")?
        .as_arr()?
        .iter()
        .map(|d| {
            Some(MassDrift {
                cluster: d.get("cluster")?.as_u64()?,
                from_mass: d.get("from_mass")?.as_f64()?,
                to_mass: d.get("to_mass")?.as_f64()?,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    Some(EvolutionDigest {
        from_generation: v.get("from_generation")?.as_u64()?,
        to_generation: v.get("to_generation")?.as_u64()?,
        from_t: v.get("from_t")?.as_f64()?,
        to_t: v.get("to_t")?.as_f64()?,
        births: v.get("births")?.as_u64_arr()?,
        deaths: v.get("deaths")?.as_u64_arr()?,
        merges,
        splits,
        adjustments: v.get("adjustments")?.as_u64()?,
        drifts,
    })
}

fn stats_json(s: &ServeStats) -> Json {
    Json::Obj(vec![
        ("generation".into(), Json::u64(s.generation)),
        ("snapshot_age_us".into(), Json::u64(s.snapshot_age.as_micros() as u64)),
        ("queue_depth".into(), Json::u64(s.queue_depth as u64)),
        ("queue_depth_hwm".into(), Json::u64(s.queue_depth_hwm as u64)),
        ("enqueued_points".into(), Json::u64(s.enqueued_points)),
        ("ingested_points".into(), Json::u64(s.ingested_points)),
        ("dropped_points".into(), Json::u64(s.dropped_points)),
        ("rejected_points".into(), Json::u64(s.rejected_points)),
        ("reads_cluster_of".into(), Json::u64(s.reads_cluster_of)),
        ("reads_n_clusters".into(), Json::u64(s.reads_n_clusters)),
        ("reads_decision_graph".into(), Json::u64(s.reads_decision_graph)),
        ("reads_snapshot".into(), Json::u64(s.reads_snapshot)),
        ("reads_digest".into(), Json::u64(s.reads_digest)),
        ("net_connections".into(), Json::u64(s.net_connections)),
        ("net_connections_rejected".into(), Json::u64(s.net_connections_rejected)),
        ("net_queries".into(), Json::u64(s.net_queries)),
        ("net_query_errors".into(), Json::u64(s.net_query_errors)),
        ("net_protocol_errors".into(), Json::u64(s.net_protocol_errors)),
        ("poisoned".into(), Json::Bool(s.poisoned)),
    ])
}

fn stats_from_json(v: &Json) -> Option<ServeStats> {
    Some(ServeStats {
        generation: v.get("generation")?.as_u64()?,
        snapshot_age: Duration::from_micros(v.get("snapshot_age_us")?.as_u64()?),
        queue_depth: v.get("queue_depth")?.as_u64()? as usize,
        queue_depth_hwm: v.get("queue_depth_hwm")?.as_u64()? as usize,
        enqueued_points: v.get("enqueued_points")?.as_u64()?,
        ingested_points: v.get("ingested_points")?.as_u64()?,
        dropped_points: v.get("dropped_points")?.as_u64()?,
        rejected_points: v.get("rejected_points")?.as_u64()?,
        reads_cluster_of: v.get("reads_cluster_of")?.as_u64()?,
        reads_n_clusters: v.get("reads_n_clusters")?.as_u64()?,
        reads_decision_graph: v.get("reads_decision_graph")?.as_u64()?,
        reads_snapshot: v.get("reads_snapshot")?.as_u64()?,
        reads_digest: v.get("reads_digest")?.as_u64()?,
        net_connections: v.get("net_connections")?.as_u64()?,
        net_connections_rejected: v.get("net_connections_rejected")?.as_u64()?,
        net_queries: v.get("net_queries")?.as_u64()?,
        net_query_errors: v.get("net_query_errors")?.as_u64()?,
        net_protocol_errors: v.get("net_protocol_errors")?.as_u64()?,
        poisoned: v.get("poisoned")?.as_bool()?,
    })
}

fn response_json(r: &QueryResponse) -> Json {
    let mut fields = vec![("resp".to_string(), Json::str(r.name()))];
    match r {
        QueryResponse::ClusterOf(a) => {
            let outcome = match a {
                Assignment::Member { cluster, distance } => Json::Obj(vec![
                    ("kind".into(), Json::str("member")),
                    ("cluster".into(), Json::u64(*cluster)),
                    ("distance".into(), Json::f64(*distance)),
                ]),
                Assignment::EmptySnapshot => {
                    Json::Obj(vec![("kind".into(), Json::str("empty_snapshot"))])
                }
                Assignment::OutOfRadius { nearest, r } => Json::Obj(vec![
                    ("kind".into(), Json::str("out_of_radius")),
                    ("nearest".into(), Json::f64(*nearest)),
                    ("r".into(), Json::f64(*r)),
                ]),
            };
            fields.push(("outcome".into(), outcome));
        }
        QueryResponse::NClusters(n) => fields.push(("n".into(), Json::u64(*n as u64))),
        QueryResponse::DecisionGraph { rho, delta } => {
            fields.push(("rho".into(), Json::f64_arr(rho)));
            fields.push(("delta".into(), Json::f64_arr(delta)));
        }
        QueryResponse::Digest(d) => fields.push(("digest".into(), digest_json(d))),
        QueryResponse::Generation(g) => fields.push(("generation".into(), Json::u64(*g))),
        QueryResponse::SnapshotAge(age) => {
            fields.push(("micros".into(), Json::u64(age.as_micros() as u64)));
        }
        QueryResponse::Stats(s) => fields.push(("stats".into(), stats_json(s))),
        QueryResponse::Health(h) => match h {
            HealthStatus::Ok => fields.push(("ok".into(), Json::Bool(true))),
            HealthStatus::WriterPanicked { message } => {
                fields.push(("ok".into(), Json::Bool(false)));
                fields.push(("message".into(), Json::str(message.clone())));
            }
        },
    }
    Json::Obj(fields)
}

fn response_from_json(v: &Json) -> Option<QueryResponse> {
    match v.get("resp")?.as_str()? {
        "cluster_of" => {
            let o = v.get("outcome")?;
            let a = match o.get("kind")?.as_str()? {
                "member" => Assignment::Member {
                    cluster: o.get("cluster")?.as_u64()?,
                    distance: o.get("distance")?.as_f64()?,
                },
                "empty_snapshot" => Assignment::EmptySnapshot,
                "out_of_radius" => Assignment::OutOfRadius {
                    nearest: o.get("nearest")?.as_f64()?,
                    r: o.get("r")?.as_f64()?,
                },
                _ => return None,
            };
            Some(QueryResponse::ClusterOf(a))
        }
        "n_clusters" => Some(QueryResponse::NClusters(v.get("n")?.as_u64()? as usize)),
        "decision_graph" => Some(QueryResponse::DecisionGraph {
            rho: v.get("rho")?.as_f64_arr()?,
            delta: v.get("delta")?.as_f64_arr()?,
        }),
        "digest" => Some(QueryResponse::Digest(digest_from_json(v.get("digest")?)?)),
        "generation" => Some(QueryResponse::Generation(v.get("generation")?.as_u64()?)),
        "snapshot_age" => {
            Some(QueryResponse::SnapshotAge(Duration::from_micros(v.get("micros")?.as_u64()?)))
        }
        "stats" => Some(QueryResponse::Stats(stats_from_json(v.get("stats")?)?)),
        "health" => {
            let ok = v.get("ok")?.as_bool()?;
            Some(QueryResponse::Health(if ok {
                HealthStatus::Ok
            } else {
                HealthStatus::WriterPanicked { message: v.get("message")?.as_str()?.to_string() }
            }))
        }
        _ => None,
    }
}

fn evolve_json(e: &EvolveError) -> Json {
    let f = |kind: &str, rest: Vec<(String, Json)>| {
        let mut fields = vec![("kind".to_string(), Json::str(kind))];
        fields.extend(rest);
        Json::Obj(fields)
    };
    match e {
        EvolveError::EvolutionDisabled => f("evolution_disabled", vec![]),
        EvolveError::EventsLost { lost } => {
            f("events_lost", vec![("lost".into(), Json::u64(*lost))])
        }
        EvolveError::UnknownCluster { cluster } => {
            f("unknown_cluster", vec![("cluster".into(), Json::u64(*cluster))])
        }
        EvolveError::NoGenerations => f("no_generations", vec![]),
        EvolveError::FutureGeneration { requested, latest } => f(
            "future_generation",
            vec![
                ("requested".into(), Json::u64(*requested)),
                ("latest".into(), Json::u64(*latest)),
            ],
        ),
        EvolveError::EvictedGeneration { requested, oldest } => f(
            "evicted_generation",
            vec![
                ("requested".into(), Json::u64(*requested)),
                ("oldest".into(), Json::u64(*oldest)),
            ],
        ),
        EvolveError::InvertedWindow { from, to } => f(
            "inverted_window",
            vec![("from".into(), Json::u64(*from)), ("to".into(), Json::u64(*to))],
        ),
        EvolveError::LossyWindow { from, to, lost } => f(
            "lossy_window",
            vec![
                ("from".into(), Json::u64(*from)),
                ("to".into(), Json::u64(*to)),
                ("lost".into(), Json::u64(*lost)),
            ],
        ),
    }
}

fn evolve_from_json(v: &Json) -> Option<EvolveError> {
    let u = |name: &str| v.get(name).and_then(Json::as_u64);
    Some(match v.get("kind")?.as_str()? {
        "evolution_disabled" => EvolveError::EvolutionDisabled,
        "events_lost" => EvolveError::EventsLost { lost: u("lost")? },
        "unknown_cluster" => EvolveError::UnknownCluster { cluster: u("cluster")? },
        "no_generations" => EvolveError::NoGenerations,
        "future_generation" => {
            EvolveError::FutureGeneration { requested: u("requested")?, latest: u("latest")? }
        }
        "evicted_generation" => {
            EvolveError::EvictedGeneration { requested: u("requested")?, oldest: u("oldest")? }
        }
        "inverted_window" => EvolveError::InvertedWindow { from: u("from")?, to: u("to")? },
        "lossy_window" => {
            EvolveError::LossyWindow { from: u("from")?, to: u("to")?, lost: u("lost")? }
        }
        _ => return None,
    })
}

fn error_json(code: &str, fields: Vec<(String, Json)>) -> Json {
    let mut inner = vec![("code".to_string(), Json::str(code))];
    inner.extend(fields);
    Json::Obj(vec![("err".into(), Json::Obj(inner))])
}

/// Encodes a full wire result (query outcome or protocol refusal) as a
/// response payload.
pub fn encode_result(r: &WireResult) -> Vec<u8> {
    let v = match r {
        Ok(Ok(resp)) => Json::Obj(vec![("ok".into(), response_json(resp))]),
        Ok(Err(QueryError::Evolve(e))) => {
            error_json("evolve", vec![("evolve".into(), evolve_json(e))])
        }
        Err(p) => {
            let mut fields = vec![("message".to_string(), Json::str(p.to_string()))];
            match p {
                ProtocolError::OversizedFrame { declared, max } => {
                    fields.push(("declared".into(), Json::u64(*declared)));
                    fields.push(("max".into(), Json::u64(*max)));
                }
                ProtocolError::Busy { max_connections } => {
                    fields.push(("max_connections".into(), Json::u64(*max_connections)));
                }
                ProtocolError::BadJson { detail } | ProtocolError::BadQuery { detail } => {
                    fields.push(("detail".into(), Json::str(detail.clone())));
                }
                ProtocolError::ShuttingDown => {}
            }
            error_json(p.code(), fields)
        }
    };
    v.encode().into_bytes()
}

/// Decodes a response payload back into the full wire result. `None`
/// means the payload does not follow the protocol at all (a client
/// talking to something that is not this server).
pub fn decode_result(payload: &[u8]) -> Option<WireResult> {
    let v = Json::parse(payload).ok()?;
    if let Some(ok) = v.get("ok") {
        return Some(Ok(Ok(response_from_json(ok)?)));
    }
    let err = v.get("err")?;
    let code = err.get("code")?.as_str()?;
    let detail = || err.get("detail").and_then(Json::as_str).unwrap_or("").to_string();
    Some(match code {
        "evolve" => Ok(Err(QueryError::Evolve(evolve_from_json(err.get("evolve")?)?))),
        "oversized_frame" => Err(ProtocolError::OversizedFrame {
            declared: err.get("declared")?.as_u64()?,
            max: err.get("max")?.as_u64()?,
        }),
        "bad_json" => Err(ProtocolError::BadJson { detail: detail() }),
        "bad_query" => Err(ProtocolError::BadQuery { detail: detail() }),
        "busy" => {
            Err(ProtocolError::Busy { max_connections: err.get("max_connections")?.as_u64()? })
        }
        "shutting_down" => Err(ProtocolError::ShuttingDown),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use edm_common::point::DenseVector;

    #[test]
    fn frame_round_trip_and_caps() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        assert_eq!(&buf[..4], &5u32.to_be_bytes());
        let mut cursor = &buf[..];
        assert_eq!(read_frame(&mut cursor, 1024).unwrap(), b"hello");
        // Same frame against a 4-byte cap: refused before allocation.
        let mut cursor = &buf[..];
        assert!(matches!(read_frame(&mut cursor, 4), Err(FrameError::Oversized { declared: 5 })));
        // Clean EOF = Closed; truncated payload = Io.
        assert!(matches!(read_frame(&mut &[][..], 1024), Err(FrameError::Closed)));
        let truncated = &buf[..6];
        assert!(matches!(read_frame(&mut &truncated[..], 1024), Err(FrameError::Io(_))));
    }

    #[test]
    fn every_query_variant_round_trips() {
        let queries: Vec<Query<DenseVector>> = vec![
            Query::ClusterOf { point: DenseVector::from([1.5, -2.5, 0.0]) },
            Query::NClusters,
            Query::DecisionGraph,
            Query::DigestSince { from: 7 },
            Query::DigestBetween { from: 3, to: u64::MAX },
            Query::Generation,
            Query::SnapshotAge,
            Query::Stats,
            Query::Health,
        ];
        for q in queries {
            let enc = encode_query(&q);
            let back: Query<DenseVector> = decode_query(&enc).unwrap();
            assert_eq!(back, q);
        }
    }

    #[test]
    fn bad_requests_are_typed() {
        type Q = Query<DenseVector>;
        let bad_json: Result<Q, _> = decode_query(b"{not json");
        assert_eq!(bad_json.unwrap_err().code(), "bad_json");
        let unknown: Result<Q, _> = decode_query(br#"{"q":"flush_all"}"#);
        assert_eq!(unknown.unwrap_err().code(), "bad_query");
        let missing_arg: Result<Q, _> = decode_query(br#"{"q":"digest_since"}"#);
        assert_eq!(missing_arg.unwrap_err().code(), "bad_query");
        let empty_point: Result<Q, _> = decode_query(br#"{"q":"cluster_of","point":[]}"#);
        assert_eq!(empty_point.unwrap_err().code(), "bad_query");
        let no_tag: Result<Q, _> = decode_query(br#"{"point":[1.0]}"#);
        assert_eq!(no_tag.unwrap_err().code(), "bad_query");
    }

    #[test]
    fn results_round_trip_ok_err_and_protocol() {
        let results: Vec<WireResult> = vec![
            Ok(Ok(QueryResponse::ClusterOf(Assignment::Member { cluster: 3, distance: 0.25 }))),
            Ok(Ok(QueryResponse::ClusterOf(Assignment::EmptySnapshot))),
            Ok(Ok(QueryResponse::ClusterOf(Assignment::OutOfRadius { nearest: 9.5, r: 0.5 }))),
            Ok(Ok(QueryResponse::NClusters(42))),
            Ok(Ok(QueryResponse::DecisionGraph { rho: vec![1.0, 2.5], delta: vec![0.5, 9.0] })),
            Ok(Ok(QueryResponse::Generation(u64::MAX))),
            Ok(Ok(QueryResponse::SnapshotAge(Duration::from_micros(1234)))),
            Ok(Ok(QueryResponse::Health(HealthStatus::Ok))),
            Ok(Ok(QueryResponse::Health(HealthStatus::WriterPanicked {
                message: "boom \"quoted\"".into(),
            }))),
            Ok(Err(QueryError::Evolve(EvolveError::FutureGeneration { requested: 9, latest: 4 }))),
            Err(ProtocolError::OversizedFrame { declared: 1 << 40, max: 1 << 20 }),
            Err(ProtocolError::BadJson { detail: "x".into() }),
            Err(ProtocolError::BadQuery { detail: "y".into() }),
            Err(ProtocolError::Busy { max_connections: 64 }),
            Err(ProtocolError::ShuttingDown),
        ];
        for r in results {
            let enc = encode_result(&r);
            let back = decode_result(&enc).unwrap();
            assert_eq!(back, r);
            // Deterministic encoding: encode is a pure function of value.
            assert_eq!(encode_result(&back), enc);
        }
    }

    #[test]
    fn digest_payload_round_trips_fully() {
        let digest = EvolutionDigest {
            from_generation: 1,
            to_generation: 5,
            from_t: 0.5,
            to_t: 9.25,
            births: vec![4, 5],
            deaths: vec![1],
            merges: vec![MergeEdge { t: 1.5, from: vec![1, 2], into: 3 }],
            splits: vec![SplitEdge { t: 2.5, from: 3, into: vec![4, 5] }],
            adjustments: 17,
            drifts: vec![MassDrift { cluster: 3, from_mass: 1.25, to_mass: 8.5 }],
        };
        let r: WireResult = Ok(Ok(QueryResponse::Digest(digest)));
        let back = decode_result(&encode_result(&r)).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn dense_vector_wire_codec_guards_inputs() {
        let p = DenseVector::from([1.0, 2.0]);
        assert_eq!(DenseVector::from_wire(p.to_wire()), Some(p));
        assert_eq!(DenseVector::from_wire(vec![]), None);
        assert_eq!(DenseVector::from_wire(vec![f64::NAN]), None);
    }
}
