//! The serving tier: a dedicated writer thread owning the engine, a
//! bounded ingest queue in front of it, and cheap concurrent read
//! handles behind the lock-free snapshot publication.
//!
//! ```text
//! producers --ingest()--> [BatchQueue] --pop--> writer thread
//!                                               ├─ insert_batch
//!                                               └─ SnapshotPublisher ──store──┐
//!                                                                        [SwapCell]
//! readers  --ServeHandle reads-- (lock-free load) <─────────────────────────┘
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering::SeqCst};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use edm_common::metric::Metric;
use edm_common::point::GridCoords;
use edm_common::time::Timestamp;
use edm_core::evolution::ClusterId;
use edm_core::EdmStream;

use crate::config::ServeConfig;
use crate::error::ServeError;
use crate::publish::{Published, SnapshotPublisher, SnapshotSource};
use crate::query::{Assignment, ClusterMiss, HealthStatus, Query, QueryError, QueryResponse};
use crate::queue::{BatchQueue, Popped, PushOutcome};
use crate::stats::{Counters, ServeStats};

/// State shared by producers, readers, and the writer thread.
struct Shared<P> {
    source: SnapshotSource<P>,
    queue: BatchQueue<P>,
    counters: Counters,
    /// Set (with the message below) when the writer loop panicked.
    poisoned: AtomicBool,
    poison_message: Mutex<Option<String>>,
}

impl<P> Shared<P> {
    fn poison_error(&self) -> Option<ServeError> {
        if self.poisoned.load(SeqCst) {
            let message = self
                .poison_message
                .lock()
                .unwrap()
                .clone()
                .unwrap_or_else(|| "unknown panic".into());
            Some(ServeError::WriterPanicked { message })
        } else {
            None
        }
    }

    fn stats(&self) -> ServeStats {
        use std::sync::atomic::Ordering::Relaxed;
        let latest = self.source.latest();
        let (queue_depth, queue_depth_hwm) = self.queue.depth();
        ServeStats {
            generation: latest.generation(),
            snapshot_age: latest.age(),
            queue_depth,
            queue_depth_hwm,
            enqueued_points: self.counters.enqueued_points.load(Relaxed),
            ingested_points: self.counters.ingested_points.load(Relaxed),
            dropped_points: self.counters.dropped_points.load(Relaxed),
            rejected_points: self.counters.rejected_points.load(Relaxed),
            reads_cluster_of: self.counters.reads_cluster_of.load(Relaxed),
            reads_n_clusters: self.counters.reads_n_clusters.load(Relaxed),
            reads_decision_graph: self.counters.reads_decision_graph.load(Relaxed),
            reads_snapshot: self.counters.reads_snapshot.load(Relaxed),
            reads_digest: self.counters.reads_digest.load(Relaxed),
            net_connections: self.counters.net_connections.load(Relaxed),
            net_connections_rejected: self.counters.net_rejected_connections.load(Relaxed),
            net_queries: self.counters.net_queries.load(Relaxed),
            net_query_errors: self.counters.net_query_errors.load(Relaxed),
            net_protocol_errors: self.counters.net_protocol_errors.load(Relaxed),
            poisoned: self.poisoned.load(SeqCst),
        }
    }
}

/// A running serving tier around one [`EdmStream`].
///
/// [`EdmServer::spawn`] publishes the engine's current state, moves the
/// engine onto a dedicated writer thread, and returns this front end.
/// Producers push timestamped batches through [`EdmServer::ingest`]
/// (backpressure per [`crate::BackpressurePolicy`]); any number of
/// [`ServeHandle`] clones answer queries from the latest published
/// snapshot without ever blocking the writer or each other.
/// [`EdmServer::shutdown`] drains the queue, publishes a final snapshot,
/// and hands the engine back.
///
/// Dropping the server without `shutdown` closes the queue and joins the
/// writer (discarding the engine) — no thread is leaked either way.
pub struct EdmServer<P, M: Metric<P>> {
    /// The server's own read handle — the canonical query path.
    /// `stats`/`health` delegate here so the server and every cloned
    /// [`ServeHandle`] answer from literally the same code.
    handle: ServeHandle<P, M>,
    writer: Option<JoinHandle<EdmStream<P, M>>>,
    capacity: usize,
    policy: crate::BackpressurePolicy,
}

impl<P, M> EdmServer<P, M>
where
    P: Clone + GridCoords + Send + Sync + 'static,
    M: Metric<P> + Clone + 'static,
{
    /// Starts the serving tier: publishes the engine's current state
    /// (generation includes any prior `publish_snapshot` calls), then
    /// moves the engine onto a writer thread driven by `cfg`.
    pub fn spawn(mut engine: EdmStream<P, M>, cfg: ServeConfig) -> Self {
        let publisher = SnapshotPublisher::new(
            &mut engine,
            cfg.publish_every_batches.get(),
            cfg.publish_interval,
        );
        let metric = engine.metric().clone();
        let shared = Arc::new(Shared {
            source: publisher.source(),
            queue: BatchQueue::new(cfg.queue_capacity.get()),
            counters: Counters::default(),
            poisoned: AtomicBool::new(false),
            poison_message: Mutex::new(None),
        });
        let writer_shared = Arc::clone(&shared);
        let writer = std::thread::Builder::new()
            .name("edm-serve-writer".into())
            .spawn(move || writer_loop(engine, publisher, writer_shared))
            .expect("spawn edm-serve writer thread");
        EdmServer {
            handle: ServeHandle { shared, metric },
            writer: Some(writer),
            capacity: cfg.queue_capacity.get(),
            policy: cfg.policy,
        }
    }

    /// Queues one timestamped batch for ingestion. Behavior on a full
    /// queue follows the configured [`crate::BackpressurePolicy`]; a
    /// poisoned or shut-down server fails with the corresponding
    /// [`ServeError`], returning the batch's points uningested.
    pub fn ingest(&self, batch: Vec<(P, Timestamp)>) -> Result<(), ServeError> {
        let shared = &self.handle.shared;
        if let Some(err) = shared.poison_error() {
            return Err(err);
        }
        let n = batch.len() as u64;
        let c = &shared.counters;
        match shared.queue.push(batch, self.policy) {
            PushOutcome::Queued => {
                c.add(&c.enqueued_points, n);
                Ok(())
            }
            PushOutcome::QueuedDroppingOldest(dropped) => {
                c.add(&c.enqueued_points, n);
                c.add(&c.dropped_points, dropped);
                Ok(())
            }
            PushOutcome::Rejected => {
                c.add(&c.rejected_points, n);
                Err(ServeError::QueueFull { capacity: self.capacity })
            }
            PushOutcome::Closed => Err(shared.poison_error().unwrap_or(ServeError::ShutDown)),
        }
    }

    /// A new concurrent read handle. Cheap (an `Arc` clone plus the
    /// metric); spawn as many as there are readers.
    pub fn handle(&self) -> ServeHandle<P, M> {
        self.handle.clone()
    }

    /// Current serving statistics. Delegates to [`ServeHandle::stats`] —
    /// the handle is the canonical read path.
    pub fn stats(&self) -> ServeStats {
        self.handle.stats()
    }

    /// `Err(WriterPanicked)` once the writer thread has panicked, `Ok`
    /// otherwise. Delegates to [`ServeHandle::health`].
    pub fn health(&self) -> Result<(), ServeError> {
        self.handle.health()
    }

    /// Graceful shutdown: stop accepting ingest, let the writer drain
    /// every queued batch, publish a final snapshot (so readers holding
    /// a [`ServeHandle`] see the complete stream), and hand the engine
    /// back. Fails with [`ServeError::WriterPanicked`] if the writer
    /// panicked before or during the drain.
    pub fn shutdown(mut self) -> Result<EdmStream<P, M>, ServeError> {
        self.handle.shared.queue.close();
        let writer = self.writer.take().expect("writer present until shutdown");
        let engine = writer.join().map_err(|_| ServeError::WriterPanicked {
            message: "writer thread died outside its panic guard".into(),
        })?;
        match self.handle.shared.poison_error() {
            Some(err) => Err(err),
            None => Ok(engine),
        }
    }
}

impl<P, M: Metric<P>> Drop for EdmServer<P, M> {
    fn drop(&mut self) {
        if let Some(writer) = self.writer.take() {
            self.handle.shared.queue.close();
            let _ = writer.join();
        }
    }
}

/// The writer thread body: pop → ingest → publish-on-cadence, panic
/// isolated so a poisoned engine can never hang producers or readers.
fn writer_loop<P, M>(
    mut engine: EdmStream<P, M>,
    mut publisher: SnapshotPublisher<P>,
    shared: Arc<Shared<P>>,
) -> EdmStream<P, M>
where
    P: Clone + GridCoords + Send + Sync,
    M: Metric<P>,
{
    let outcome = catch_unwind(AssertUnwindSafe(|| loop {
        match shared.queue.pop(publisher.poll_timeout()) {
            Popped::Batch(batch) => {
                engine.insert_batch(&batch);
                let c = &shared.counters;
                c.add(&c.ingested_points, batch.len() as u64);
                publisher.note_batch(&mut engine);
                // A long pop-wait may have pushed the timer past due too.
                publisher.publish_if_due(&mut engine);
            }
            Popped::TimedOut => {
                publisher.publish_if_due(&mut engine);
            }
            Popped::Closed => {
                // Drained. Final publish so the last generation reflects
                // every ingested point.
                publisher.publish(&mut engine);
                break;
            }
        }
    }));
    if let Err(payload) = outcome {
        let message = panic_message(&*payload);
        *shared.poison_message.lock().unwrap() = Some(message);
        shared.poisoned.store(true, SeqCst);
        // Unblock producers: no more batches will ever be consumed.
        shared.queue.close();
        shared.queue.clear();
    }
    engine
}

/// Best-effort stringification of a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

/// A concurrent read handle over the latest published snapshot.
///
/// Every method answers from the most recent [`Published`] payload via a
/// lock-free load — readers never block on the writer, on producers, or
/// on each other, and a panicked writer leaves reads serving the last
/// good snapshot. Clone freely across threads.
pub struct ServeHandle<P, M: Metric<P>> {
    shared: Arc<Shared<P>>,
    metric: M,
}

impl<P, M: Metric<P> + Clone> Clone for ServeHandle<P, M> {
    fn clone(&self) -> Self {
        ServeHandle { shared: Arc::clone(&self.shared), metric: self.metric.clone() }
    }
}

impl<P, M: Metric<P>> ServeHandle<P, M> {
    /// Evaluates one typed [`Query`] against the latest published
    /// snapshot — **the** evaluation path of the serving tier. Every
    /// inherent convenience method below is a thin wrapper over this
    /// function, and the TCP front end ([`crate::net::NetServer`])
    /// dispatches decoded frames straight into it, so an in-process
    /// caller and a remote client asking the same question run the same
    /// code and get the same answer by construction.
    ///
    /// A `ClusterOf` miss is *data* ([`Assignment`]), not an error;
    /// [`QueryError`] is reserved for typed refusals (today: the digest
    /// window contract). Lock-free like every handle read.
    pub fn execute(&self, query: &Query<P>) -> Result<QueryResponse, QueryError> {
        let c = &self.shared.counters;
        match query {
            Query::ClusterOf { point } => Ok(QueryResponse::ClusterOf(self.assign_probe(point))),
            Query::NClusters => {
                c.add(&c.reads_n_clusters, 1);
                Ok(QueryResponse::NClusters(self.shared.source.latest().snapshot().n_clusters()))
            }
            Query::DecisionGraph => {
                c.add(&c.reads_decision_graph, 1);
                let latest = self.shared.source.latest();
                let (rho, delta) = latest.snapshot().decision_graph();
                Ok(QueryResponse::DecisionGraph { rho: rho.to_vec(), delta: delta.to_vec() })
            }
            Query::DigestSince { from } => {
                c.add(&c.reads_digest, 1);
                let digest = self.shared.source.latest().digest_since(*from)?;
                Ok(QueryResponse::Digest(digest))
            }
            Query::DigestBetween { from, to } => {
                c.add(&c.reads_digest, 1);
                let digest = self.shared.source.latest().digest_between(*from, *to)?;
                Ok(QueryResponse::Digest(digest))
            }
            Query::Generation => {
                c.add(&c.reads_snapshot, 1);
                Ok(QueryResponse::Generation(self.shared.source.generation()))
            }
            Query::SnapshotAge => {
                c.add(&c.reads_snapshot, 1);
                // Truncated to microseconds: the handle and the wire
                // answer at the same (ample) resolution.
                let age = self.shared.source.latest().age();
                Ok(QueryResponse::SnapshotAge(Duration::from_micros(age.as_micros() as u64)))
            }
            Query::Stats => Ok(QueryResponse::Stats(self.shared.stats())),
            Query::Health => {
                let status = match self.shared.poison_error() {
                    Some(ServeError::WriterPanicked { message }) => {
                        HealthStatus::WriterPanicked { message }
                    }
                    _ => HealthStatus::Ok,
                };
                Ok(QueryResponse::Health(status))
            }
        }
    }

    /// The one `ClusterOf` evaluation, shared between [`Query`] dispatch
    /// and the borrowing wrappers below (which thereby skip the point
    /// clone an owned `Query` would force onto the hot read path).
    fn assign_probe(&self, p: &P) -> Assignment {
        let c = &self.shared.counters;
        c.add(&c.reads_cluster_of, 1);
        self.shared.source.latest().assign(p, &self.metric)
    }

    /// The latest published payload (snapshot + membership data), for
    /// multi-field reads that must be mutually coherent: one `latest()`
    /// is one frozen generation, whereas two separate handle calls may
    /// straddle a publication. (Deliberately not a [`Query`]: an `Arc`
    /// into the payload cannot cross a wire.)
    pub fn latest(&self) -> Arc<Published<P>> {
        let c = &self.shared.counters;
        c.add(&c.reads_snapshot, 1);
        self.shared.source.latest()
    }

    /// The cluster a fresh point would join, per the published state:
    /// nearest published seed within `r` under the engine's own metric
    /// (`None` = outlier). See [`Published::cluster_of`] for staleness
    /// semantics, and [`ServeHandle::try_cluster_of`] for the typed-miss
    /// form.
    pub fn cluster_of(&self, p: &P) -> Option<ClusterId> {
        self.assign_probe(p).membership()
    }

    /// [`ServeHandle::cluster_of`] with the miss reason kept: `Ok` is
    /// the winning `(cluster, distance)`, `Err` says *why* the probe
    /// missed — [`ClusterMiss::EmptySnapshot`] (nothing clustered yet;
    /// wait for a publication) vs [`ClusterMiss::OutOfRadius`] (a
    /// genuine outlier, with the distance it missed by). Routed through
    /// [`ServeHandle::execute`] like every other read.
    pub fn try_cluster_of(&self, p: &P) -> Result<(ClusterId, f64), ClusterMiss> {
        match self.assign_probe(p) {
            Assignment::Member { cluster, distance } => Ok((cluster, distance)),
            Assignment::EmptySnapshot => Err(ClusterMiss::EmptySnapshot),
            Assignment::OutOfRadius { nearest, r } => Err(ClusterMiss::OutOfRadius { nearest, r }),
        }
    }

    /// Number of clusters in the published snapshot.
    pub fn n_clusters(&self) -> usize {
        match self.execute(&Query::NClusters) {
            Ok(QueryResponse::NClusters(n)) => n,
            _ => unreachable!("NClusters answers NClusters and never errors"),
        }
    }

    /// The published (ρ, δ) decision graph, cloned out so the caller
    /// holds no borrow into the payload.
    pub fn decision_graph(&self) -> (Vec<f64>, Vec<f64>) {
        match self.execute(&Query::DecisionGraph) {
            Ok(QueryResponse::DecisionGraph { rho, delta }) => (rho, delta),
            _ => unreachable!("DecisionGraph answers DecisionGraph and never errors"),
        }
    }

    /// What changed since generation `from`, per the latest published
    /// payload: births, deaths, merges, splits and mass drift up to the
    /// payload's own generation. Computed entirely from the payload's
    /// frozen digest window — a lock-free read that never blocks the
    /// writer. Dashboards poll this with the generation they last
    /// rendered; a typed [`edm_core::EvolveError`] tells them when that
    /// generation has already left the bounded history (re-render from
    /// the full snapshot instead).
    pub fn digest_since(
        &self,
        from: u64,
    ) -> Result<edm_core::EvolutionDigest, edm_core::EvolveError> {
        match self.execute(&Query::DigestSince { from }) {
            Ok(QueryResponse::Digest(d)) => Ok(d),
            Err(QueryError::Evolve(e)) => Err(e),
            _ => unreachable!("DigestSince answers Digest"),
        }
    }

    /// What changed in the window `(from, to]` of published generations,
    /// per the latest published payload.
    pub fn digest_between(
        &self,
        from: u64,
        to: u64,
    ) -> Result<edm_core::EvolutionDigest, edm_core::EvolveError> {
        match self.execute(&Query::DigestBetween { from, to }) {
            Ok(QueryResponse::Digest(d)) => Ok(d),
            Err(QueryError::Evolve(e)) => Err(e),
            _ => unreachable!("DigestBetween answers Digest"),
        }
    }

    /// The `(oldest, latest)` generations the latest published payload
    /// can digest over; `None` when evolution tracking is disabled.
    pub fn digest_generations(&self) -> Option<(u64, u64)> {
        let c = &self.shared.counters;
        c.add(&c.reads_digest, 1);
        self.shared.source.latest().digest_generations()
    }

    /// Generation of the published snapshot (1-based, monotone).
    pub fn generation(&self) -> u64 {
        match self.execute(&Query::Generation) {
            Ok(QueryResponse::Generation(g)) => g,
            _ => unreachable!("Generation answers Generation and never errors"),
        }
    }

    /// Wall-clock age of the published snapshot (microsecond
    /// granularity).
    pub fn snapshot_age(&self) -> Duration {
        match self.execute(&Query::SnapshotAge) {
            Ok(QueryResponse::SnapshotAge(age)) => age,
            _ => unreachable!("SnapshotAge answers SnapshotAge and never errors"),
        }
    }

    /// Current serving statistics — the canonical path
    /// ([`EdmServer::stats`] delegates here).
    pub fn stats(&self) -> ServeStats {
        match self.execute(&Query::Stats) {
            Ok(QueryResponse::Stats(s)) => s,
            _ => unreachable!("Stats answers Stats and never errors"),
        }
    }

    /// `Err(WriterPanicked)` once the writer thread has panicked, `Ok`
    /// otherwise — the canonical path ([`EdmServer::health`] delegates
    /// here).
    pub fn health(&self) -> Result<(), ServeError> {
        match self.execute(&Query::Health) {
            Ok(QueryResponse::Health(HealthStatus::Ok)) => Ok(()),
            Ok(QueryResponse::Health(HealthStatus::WriterPanicked { message })) => {
                Err(ServeError::WriterPanicked { message })
            }
            _ => unreachable!("Health answers Health and never errors"),
        }
    }

    /// The shared counters, for the network front end's bookkeeping
    /// (accepted/rejected connections, protocol errors).
    pub(crate) fn counters(&self) -> &Counters {
        &self.shared.counters
    }
}
