//! DP-Tree operations (paper §2.2, §4.2).
//!
//! The DP-Tree is stored implicitly in the cells: `dep` is the parent edge
//! (the nearest active cell of higher density) and `children` is its
//! reverse. These free functions keep the two sides consistent and provide
//! the traversals the engine and the evolution tracker need. Strong links
//! are links with `δ ≤ τ`; maximal strongly-dependent subtrees
//! (MSDSubTrees) are the clusters (Definition 2).

use edm_common::decay::DecayModel;
use edm_common::time::Timestamp;

use crate::cell::{denser, CellId};
use crate::slab::CellSlab;

/// Attaches `child` under `parent` with dependent distance `delta`.
/// The child must currently be detached (`dep == None`).
pub fn attach<P>(slab: &mut CellSlab<P>, child: CellId, parent: CellId, delta: f64) {
    debug_assert!(slab.get(child).dep.is_none(), "attach requires a detached child");
    debug_assert_ne!(child, parent, "a cell cannot depend on itself");
    {
        let c = slab.get_mut(child);
        c.dep = Some(parent);
        c.delta = delta;
    }
    slab.get_mut(parent).children.push(child);
}

/// Detaches `child` from its parent (if any); the child becomes a root with
/// `δ = ∞` until re-attached. Returns the former parent.
pub fn detach<P>(slab: &mut CellSlab<P>, child: CellId) -> Option<CellId> {
    let old = slab.get(child).dep;
    if let Some(p) = old {
        let parent = slab.get_mut(p);
        let pos = parent
            .children
            .iter()
            .position(|&c| c == child)
            .expect("child missing from parent's children list");
        parent.children.swap_remove(pos);
        let c = slab.get_mut(child);
        c.dep = None;
        c.delta = f64::INFINITY;
    }
    old
}

/// Re-points `child`'s dependency to `new_parent` at distance `delta`
/// (the single-pointer update the paper highlights as the cheap operation).
pub fn set_dep<P>(slab: &mut CellSlab<P>, child: CellId, new_parent: CellId, delta: f64) {
    detach(slab, child);
    attach(slab, child, new_parent, delta);
}

/// Walks up strong links from `id` and returns its MSDSubTree root.
pub fn strong_root<P>(slab: &CellSlab<P>, id: CellId, tau: f64) -> CellId {
    let mut cur = id;
    loop {
        let cell = slab.get(cur);
        match cell.dep {
            Some(p) if cell.delta <= tau => cur = p,
            _ => return cur,
        }
    }
}

/// Collects `root` and every descendant (children closure) into `out`.
pub fn collect_subtree<P>(slab: &CellSlab<P>, root: CellId, out: &mut Vec<CellId>) {
    out.push(root);
    let mut stack = vec![root];
    while let Some(id) = stack.pop() {
        for &c in &slab.get(id).children {
            out.push(c);
            stack.push(c);
        }
    }
}

/// All current MSDSubTree roots among active cells: cells whose link is
/// absent or weak (`δ > τ`).
pub fn strong_roots<P>(slab: &CellSlab<P>, tau: f64) -> Vec<CellId> {
    slab.iter()
        .filter(|(_, c)| c.active && (c.dep.is_none() || c.delta > tau))
        .map(|(id, _)| id)
        .collect()
}

/// Validates every structural invariant of the DP-Tree; used by tests and
/// the property suite. Returns an error string describing the first
/// violation found.
pub fn check_invariants<P>(
    slab: &CellSlab<P>,
    t: Timestamp,
    decay: &DecayModel,
) -> Result<(), String> {
    let active: Vec<CellId> = slab.iter().filter(|(_, c)| c.active).map(|(id, _)| id).collect();
    for &id in &active {
        let cell = slab.get(id);
        match cell.dep {
            None => {
                if cell.delta.is_finite() {
                    return Err(format!("root {id} has finite delta {}", cell.delta));
                }
            }
            Some(p) => {
                if !slab.contains(p) {
                    return Err(format!("{id} depends on dead cell {p}"));
                }
                let parent = slab.get(p);
                if !parent.active {
                    return Err(format!("{id} depends on inactive {p}"));
                }
                if !denser(parent, p, cell, id, t, decay) {
                    return Err(format!(
                        "{id} (rho {}) depends on non-denser {p} (rho {})",
                        cell.rho_at(t, decay),
                        parent.rho_at(t, decay)
                    ));
                }
                let times = parent.children.iter().filter(|&&c| c == id).count();
                if times != 1 {
                    return Err(format!("{p} lists child {id} {times} times"));
                }
            }
        }
        for &c in &cell.children {
            if !slab.contains(c) {
                return Err(format!("{id} lists dead child {c}"));
            }
            if slab.get(c).dep != Some(id) {
                return Err(format!("{id} lists {c} whose dep is {:?}", slab.get(c).dep));
            }
        }
        // Acyclicity: the dep chain must terminate within |active| steps.
        let mut cur = id;
        for _ in 0..=active.len() {
            match slab.get(cur).dep {
                Some(p) => cur = p,
                None => break,
            }
        }
        if slab.get(cur).dep.is_some() {
            return Err(format!("dependency cycle reachable from {id}"));
        }
        // Inactive cells must never appear in children lists of actives
        // (checked from the child side above via dep==Some(id)).
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::Cell;

    fn decay() -> DecayModel {
        DecayModel::paper_default()
    }

    /// Builds a slab of `n` active cells where cell i has density n-i
    /// (cell 0 densest), no edges yet.
    fn slab_with(n: usize) -> (CellSlab<u32>, Vec<CellId>) {
        let mut slab = CellSlab::new();
        let mut ids = Vec::new();
        for i in 0..n {
            let mut cell = Cell::new(i as u32, 0.0);
            for _ in 0..(n - i) {
                cell.absorb(0.0, &decay());
            }
            cell.active = true;
            ids.push(slab.insert(cell));
        }
        (slab, ids)
    }

    #[test]
    fn attach_detach_roundtrip() {
        let (mut slab, ids) = slab_with(3);
        attach(&mut slab, ids[1], ids[0], 1.0);
        attach(&mut slab, ids[2], ids[1], 0.5);
        assert_eq!(slab.get(ids[0]).children, vec![ids[1]]);
        assert!(check_invariants(&slab, 0.0, &decay()).is_ok());
        let old = detach(&mut slab, ids[1]);
        assert_eq!(old, Some(ids[0]));
        assert!(slab.get(ids[0]).children.is_empty());
        assert!(slab.get(ids[1]).dep.is_none());
        assert_eq!(slab.get(ids[1]).delta, f64::INFINITY);
        // ids[2] still hangs under ids[1]: the subtree moved with it.
        assert_eq!(slab.get(ids[1]).children, vec![ids[2]]);
    }

    #[test]
    fn set_dep_moves_between_parents() {
        let (mut slab, ids) = slab_with(3);
        attach(&mut slab, ids[2], ids[0], 2.0);
        set_dep(&mut slab, ids[2], ids[1], 0.7);
        assert!(slab.get(ids[0]).children.is_empty());
        assert_eq!(slab.get(ids[1]).children, vec![ids[2]]);
        assert_eq!(slab.get(ids[2]).delta, 0.7);
        assert!(check_invariants(&slab, 0.0, &decay()).is_ok());
    }

    #[test]
    fn strong_root_stops_at_weak_link() {
        let (mut slab, ids) = slab_with(4);
        attach(&mut slab, ids[1], ids[0], 5.0); // weak under tau=1
        attach(&mut slab, ids[2], ids[1], 0.5); // strong
        attach(&mut slab, ids[3], ids[2], 0.5); // strong
        assert_eq!(strong_root(&slab, ids[3], 1.0), ids[1]);
        assert_eq!(strong_root(&slab, ids[1], 1.0), ids[1]);
        assert_eq!(strong_root(&slab, ids[0], 1.0), ids[0]);
        // Raising tau merges everything into the global root.
        assert_eq!(strong_root(&slab, ids[3], 10.0), ids[0]);
    }

    #[test]
    fn strong_roots_enumerates_cluster_heads() {
        let (mut slab, ids) = slab_with(4);
        attach(&mut slab, ids[1], ids[0], 5.0);
        attach(&mut slab, ids[2], ids[1], 0.5);
        attach(&mut slab, ids[3], ids[2], 0.5);
        let mut roots = strong_roots(&slab, 1.0);
        roots.sort();
        assert_eq!(roots, vec![ids[0], ids[1]]);
    }

    #[test]
    fn collect_subtree_gets_descendants() {
        let (mut slab, ids) = slab_with(4);
        attach(&mut slab, ids[1], ids[0], 1.0);
        attach(&mut slab, ids[2], ids[1], 1.0);
        attach(&mut slab, ids[3], ids[0], 1.0);
        let mut out = Vec::new();
        collect_subtree(&slab, ids[1], &mut out);
        out.sort();
        assert_eq!(out, vec![ids[1], ids[2]]);
        let mut all = Vec::new();
        collect_subtree(&slab, ids[0], &mut all);
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn invariants_catch_density_inversion() {
        let (mut slab, ids) = slab_with(2);
        // Attach the denser cell under the sparser one: invalid.
        attach(&mut slab, ids[0], ids[1], 1.0);
        let err = check_invariants(&slab, 0.0, &decay()).unwrap_err();
        assert!(err.contains("non-denser"), "{err}");
    }

    #[test]
    fn invariants_catch_dangling_children() {
        let (mut slab, ids) = slab_with(3);
        attach(&mut slab, ids[1], ids[0], 1.0);
        // Corrupt: manually add a bogus child entry.
        slab.get_mut(ids[0]).children.push(ids[2]);
        let err = check_invariants(&slab, 0.0, &decay()).unwrap_err();
        assert!(err.contains("whose dep is"), "{err}");
    }

    #[test]
    fn invariants_ok_on_empty_and_singleton() {
        let slab: CellSlab<u32> = CellSlab::new();
        assert!(check_invariants(&slab, 0.0, &decay()).is_ok());
        let (slab, _) = slab_with(1);
        assert!(check_invariants(&slab, 0.0, &decay()).is_ok());
    }
}
