//! A minimal JSON value, parser, and writer for the wire protocol.
//!
//! The vendor tree's `serde` is an offline no-op stub (nothing in the
//! workspace serialized before this crate), so the wire codec carries
//! its own ~200-line JSON kernel — the same spirit as
//! `edm_bench::report::merge_bench_json`, but with a real parser because
//! the server must survive *hostile* bytes, not just re-read its own
//! output. Design choices that matter to the protocol:
//!
//! * **Numbers stay raw text** ([`Json::Num`] holds the original token).
//!   Counters and generations are `u64`; routing them through `f64`
//!   would corrupt values above 2^53. Each field parses its token as the
//!   exact type it wants (`u64`, `usize`, `f64`) at decode time.
//! * **Floats encode via `{:?}`** — Rust's shortest round-trip
//!   formatting — so `encode(decode(x)) == x` byte-for-byte, which is
//!   what lets the loopback test compare TCP answers with in-process
//!   answers as raw bytes. Non-finite floats encode as `null` (JSON has
//!   no NaN/Inf); no published payload produces them.
//! * **Depth-capped parsing** (64 levels): a hostile frame of ten
//!   thousand `[` must produce a typed error, not a stack overflow.

use std::fmt::Write as _;

/// One JSON value. Object fields keep insertion order (encoding is
/// deterministic, which the byte-identity tests rely on).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw token (see module docs).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, fields in insertion order.
    Obj(Vec<(String, Json)>),
}

/// Why a byte sequence failed to parse as JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong, human-readable.
    pub what: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.what, self.at)
    }
}

impl std::error::Error for ParseError {}

/// Nesting depth past which the parser refuses (hostile-input guard).
const MAX_DEPTH: usize = 64;

impl Json {
    /// Convenience constructors for the codec.
    pub fn u64(v: u64) -> Json {
        Json::Num(v.to_string())
    }

    /// A float value; non-finite becomes `null` (JSON has no NaN/Inf).
    pub fn f64(v: f64) -> Json {
        if v.is_finite() {
            Json::Num(format!("{v:?}"))
        } else {
            Json::Null
        }
    }

    /// A string value.
    pub fn str(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// An array of floats (point coordinates, decision-graph columns).
    pub fn f64_arr(vs: &[f64]) -> Json {
        Json::Arr(vs.iter().map(|&v| Json::f64(v)).collect())
    }

    /// An array of u64s (cluster-id lists).
    pub fn u64_arr(vs: &[u64]) -> Json {
        Json::Arr(vs.iter().map(|&v| Json::u64(v)).collect())
    }

    // ----- accessors (decode side) -----

    /// The field `key` of an object, if present.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// This value as a `u64` (numbers only, exact).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// This value as an `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(vs) => Some(vs),
            _ => None,
        }
    }

    /// This value as a vector of floats (all elements must be numbers).
    pub fn as_f64_arr(&self) -> Option<Vec<f64>> {
        self.as_arr()?.iter().map(Json::as_f64).collect()
    }

    /// This value as a vector of u64s (all elements must be numbers).
    pub fn as_u64_arr(&self) -> Option<Vec<u64>> {
        self.as_arr()?.iter().map(Json::as_u64).collect()
    }

    // ----- writer -----

    /// Encodes this value as compact JSON (no whitespace, fields in
    /// insertion order — deterministic).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(raw) => out.push_str(raw),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(vs) => {
                out.push('[');
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    // ----- parser -----

    /// Parses one JSON value from `input`, requiring it to consume the
    /// whole slice (trailing whitespace allowed).
    pub fn parse(input: &[u8]) -> Result<Json, ParseError> {
        let mut p = Parser { input, pos: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.input.len() {
            return Err(ParseError { at: p.pos, what: "trailing bytes after value" });
        }
        Ok(v)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.input.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn err(&self, what: &'static str) -> ParseError {
        ParseError { at: self.pos, what }
    }

    fn eat(&mut self, b: u8, what: &'static str) -> Result<(), ParseError> {
        if self.input.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, lit: &[u8], v: Json) -> Result<Json, ParseError> {
        if self.input[self.pos..].starts_with(lit) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.input.get(self.pos) {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal(b"null", Json::Null),
            Some(b't') => self.literal(b"true", Json::Bool(true)),
            Some(b'f') => self.literal(b"false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut vs = Vec::new();
                self.skip_ws();
                if self.input.get(self.pos) == Some(&b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(vs));
                }
                loop {
                    self.skip_ws();
                    vs.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.input.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(vs));
                        }
                        _ => return Err(self.err("expected ',' or ']' in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.input.get(self.pos) == Some(&b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':', "expected ':' after object key")?;
                    self.skip_ws();
                    let v = self.value(depth + 1)?;
                    fields.push((key, v));
                    self.skip_ws();
                    match self.input.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(self.err("expected ',' or '}' in object")),
                    }
                }
            }
            Some(_) => self.number(),
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.input.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut saw_digit = false;
        while let Some(&b) = self.input.get(self.pos) {
            match b {
                b'0'..=b'9' => {
                    saw_digit = true;
                    self.pos += 1;
                }
                b'.' | b'e' | b'E' | b'+' | b'-' => self.pos += 1,
                _ => break,
            }
        }
        if !saw_digit {
            return Err(self.err("expected a number"));
        }
        let raw = std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| self.err("non-utf8 number"))?;
        // The permissive scan above admits shapes like "1.2.3"; a parse
        // check keeps Num tokens convertible later.
        if raw.parse::<f64>().is_err() {
            return Err(ParseError { at: start, what: "malformed number" });
        }
        Ok(Json::Num(raw.to_string()))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.input.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.input.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if !self.input[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c).ok_or_else(|| self.err("invalid code point"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid code point"))?
                            };
                            out.push(ch);
                            continue; // hex4 advanced pos already
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (frames are validated as
                    // UTF-8 before parsing, so slicing is safe).
                    let rest = std::str::from_utf8(&self.input[self.pos..])
                        .map_err(|_| self.err("non-utf8 string"))?;
                    let ch = rest.chars().next().ok_or_else(|| self.err("empty"))?;
                    if (ch as u32) < 0x20 {
                        return Err(self.err("raw control character in string"));
                    }
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let slice = self
            .input
            .get(self.pos..self.pos + 4)
            .ok_or(ParseError { at: self.pos, what: "truncated \\u escape" })?;
        let s = std::str::from_utf8(slice).map_err(|_| self.err("non-utf8 \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_structure() {
        let v = Json::Obj(vec![
            ("a".into(), Json::u64(u64::MAX)),
            ("b".into(), Json::f64(1.5)),
            ("c".into(), Json::Arr(vec![Json::Null, Json::Bool(true), Json::str("x\"\\\n")])),
        ]);
        let text = v.encode();
        let back = Json::parse(text.as_bytes()).unwrap();
        assert_eq!(back, v);
        // u64::MAX survives exactly (would not through f64).
        assert_eq!(back.get("a").unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn floats_round_trip_byte_identically() {
        for x in [0.0, -0.0, 1.0, 0.1, 1e300, 1e-300, std::f64::consts::PI, f64::MIN_POSITIVE] {
            let enc = Json::f64(x).encode();
            let re = Json::parse(enc.as_bytes()).unwrap();
            assert_eq!(re.encode(), enc, "float {x} must re-encode identically");
            assert_eq!(re.as_f64(), Some(x));
        }
        assert_eq!(Json::f64(f64::NAN), Json::Null);
        assert_eq!(Json::f64(f64::INFINITY), Json::Null);
    }

    #[test]
    fn unicode_escapes_parse_including_surrogate_pairs() {
        let v = Json::parse(br#""\u0041\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé😀"));
        assert!(Json::parse(br#""\ud83d""#).is_err(), "lone surrogate refused");
        // Control characters escape on encode and survive the round trip.
        let s = Json::str("a\u{1}b");
        let enc = s.encode();
        assert!(enc.contains("\\u0001"), "{enc}");
        assert_eq!(Json::parse(enc.as_bytes()).unwrap(), s);
    }

    #[test]
    fn malformed_inputs_are_typed_errors_not_panics() {
        for bad in [
            &b"{"[..],
            b"[1,",
            b"nul",
            b"\"unterminated",
            b"{\"a\" 1}",
            b"1.2.3",
            b"[] trailing",
            b"\x00\x01\x02",
            b"",
            b"-",
            b"\"\\q\"",
            b"{\"a\":}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must fail");
        }
    }

    #[test]
    fn nesting_bomb_is_refused_not_overflowed() {
        let bomb = vec![b'['; 100_000];
        let err = Json::parse(&bomb).unwrap_err();
        assert_eq!(err.what, "nesting too deep");
    }

    #[test]
    fn accessors_are_type_strict() {
        let v = Json::parse(br#"{"n": 3, "s": "x", "a": [1.5, 2.5], "b": false}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("a").unwrap().as_f64_arr(), Some(vec![1.5, 2.5]));
        assert_eq!(v.get("a").unwrap().as_u64_arr(), None, "floats are not u64s");
        assert_eq!(v.get("b").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.get("s").unwrap().as_u64(), None);
    }
}
