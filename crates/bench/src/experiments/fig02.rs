//! Fig 2 — Density Peaks Clustering on a 2-D point set: plane view (2a)
//! and decision graph (2b).
//!
//! Demonstrates the batch algorithm EDMStream streams-ifies: the density
//! peaks stand out in the upper-right of the (ρ, δ) plot, and the
//! suggested τ line separates them.

use edm_common::metric::Euclidean;
use edm_data::gen::blobs::{sample_mixture, Blob};
use edm_dp::decision::DecisionGraph;
use edm_dp::dp::{self, DpConfig};
use edm_dp::util::distance_quantile;

use super::Ctx;
use crate::report::{ascii_scatter, f, Report};

/// Regenerates Fig 2.
pub fn run(ctx: &Ctx) -> std::io::Result<()> {
    // Five well-separated blobs, like the paper's illustrative point set.
    let blobs = vec![
        Blob::new(vec![2.0, 2.0], 0.6, 1.0, 0),
        Blob::new(vec![8.0, 3.0], 0.7, 1.2, 1),
        Blob::new(vec![5.0, 8.0], 0.5, 0.8, 2),
        Blob::new(vec![11.0, 9.0], 0.8, 1.0, 3),
        Blob::new(vec![1.5, 9.5], 0.5, 0.6, 4),
    ];
    let stream = sample_mixture("fig2-blobs", &blobs, 800, 1_000.0, 0.3, 0xF162);
    let points: Vec<_> = stream.points.iter().map(|p| p.payload.clone()).collect();

    // dc from the 2% pairwise-distance quantile (paper §6.7 heuristic).
    let dc = distance_quantile(&points, &Euclidean, 0.02, 50_000, 7);
    let res = dp::cluster(&points, &Euclidean, &DpConfig::new(dc, 2.0, f64::INFINITY));
    let graph = DecisionGraph::new(&res.rho, &res.delta);
    let tau = graph.suggest_tau(2.0).unwrap_or(1.0);
    let clustered = dp::cluster(&points, &Euclidean, &DpConfig::new(dc, 2.0, tau));

    println!("\n== fig2: plane view (2a) ==");
    let marks: Vec<(f64, f64, char)> = points
        .iter()
        .zip(&clustered.assignment)
        .map(|(p, a)| {
            let glyph = match a {
                Some(c) => ['*', '#', '@', ':', '.'][c % 5],
                None => '.',
            };
            (p.coords()[0], p.coords()[1], glyph)
        })
        .collect();
    print!("{}", ascii_scatter(&marks, (0.0, 13.0), (0.0, 12.0), 18, 60));

    println!("== fig2: decision graph (2b), tau line at {tau:.3} ==");
    print!("{}", graph.render_ascii(16, 60, &[tau]));

    let mut rep = Report::new(
        "fig2_decision_graph",
        &["dc", "tau", "centers", "clusters_found", "true_clusters", "outliers"],
        ctx.out_dir(),
    );
    rep.row(vec![
        f(dc, 4),
        f(tau, 4),
        graph.centers_at(tau, 2.0).to_string(),
        clustered.n_clusters().to_string(),
        "5".into(),
        clustered.n_outliers().to_string(),
    ]);
    rep.finish()
}
