//! Deterministic synthetic generators for the paper's six datasets.
//!
//! Every generator takes a `u64` seed and is fully reproducible (ChaCha8
//! RNG — stable across platforms and `rand` releases, unlike `StdRng`).
//! Sizes are parameterized so experiments can run paper-scale
//! (`n = Table 2 instances`) or scaled down for quick iterations.
//!
//! | Paper dataset | Generator | Notes |
//! |---|---|---|
//! | SDS | [`sds`] | scripted 2-D evolution (merge / emerge / disappear / split) |
//! | HDS | [`hds`] | 20 drifting Gaussians, dimension is a parameter |
//! | KDDCUP99 | [`kdd`] | surrogate: 23 classes, extreme skew, bursty phases |
//! | CoverType | [`covertype`] | surrogate: 7 classes, 54 dims, gradual drift |
//! | PAMAP2 | [`pamap2`] | surrogate: 13 activities in temporal segments |
//! | NADS | [`nads`] | surrogate: token-set news stream with a scripted event calendar |

pub mod blobs;
pub mod covertype;
pub mod hds;
pub mod kdd;
pub mod nads;
pub mod pamap2;
pub mod sds;

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The reproducible RNG used by all generators.
pub type GenRng = ChaCha8Rng;

/// Creates the generator RNG from a seed.
pub fn rng(seed: u64) -> GenRng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Standard normal sample (Box–Muller; one value per call keeps the
/// generators simple and deterministic).
pub fn randn(rng: &mut GenRng) -> f64 {
    // Avoid ln(0) by sampling u1 from (0,1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples an index from unnormalized non-negative `weights`.
///
/// # Panics
/// Panics when all weights are zero or the slice is empty.
pub fn sample_weighted(rng: &mut GenRng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weighted sample needs positive total weight");
    let mut x = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        x -= w;
        if x <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_across_calls() {
        let mut a = rng(7);
        let mut b = rng(7);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn randn_has_roughly_standard_moments() {
        let mut r = rng(11);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| randn(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn sample_weighted_respects_weights() {
        let mut r = rng(3);
        let w = [0.0, 1.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..4000 {
            counts[sample_weighted(&mut r, &w)] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[2] as f64 / counts[1] as f64;
        assert!((ratio - 3.0).abs() < 0.5, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "positive total weight")]
    fn sample_weighted_rejects_all_zero() {
        sample_weighted(&mut rng(0), &[0.0, 0.0]);
    }
}
